//! Coverage-driven scenario fuzzing over the workload DSL.
//!
//! The fuzzer mutates [`ScenarioProgram`]s starting from the quiet
//! [`ScenarioProgram::base`] reference, runs every candidate as a full
//! delivery world with an attached trace sink, and scores it on two
//! axes:
//!
//! - **behavioural coverage** ([`CoverageCatalog`]): which trace-event
//!   kinds fired, which mode transitions occurred, which recovery
//!   actions succeeded/failed, and which blew their deadline;
//! - **QoE badness**: rebuffer time, head-skips, and the worst
//!   obs-window recovery-failure rate.
//!
//! A candidate is *kept* when it covers a behaviour no earlier run
//! reached, or when it is markedly worse than anything seen so far —
//! kept candidates join the mutation frontier and their specs are
//! emitted as replayable regression seeds.
//!
//! Determinism contract: mutation, evaluation order, and selection are
//! all driven by the single fuzz seed; candidate worlds are evaluated
//! through the deterministic cell runner and folded in input order, so
//! the rendered report is byte-identical for any `--jobs` /
//! `--world-jobs` combination (pinned by `tests/fuzz_invariance.rs`
//! and the `fuzz` golden digest).

use crate::config::{DeliveryMode, SystemConfig};
use crate::fleet::WorldSpec;
use crate::world::GroupPolicy;
use rlive_sim::coverage::CoverageCatalog;
use rlive_sim::obs::{time_stage, Stage};
use rlive_sim::runner::run_cells;
use rlive_sim::trace::{TraceEvent, TraceSink};
use rlive_sim::{SimDuration, SimRng};
use rlive_workload::dsl::{DslError, ScenarioProgram};

/// Candidates evaluated per runner batch. Fixed (not derived from
/// `jobs`) so the mutation/selection schedule is identical no matter
/// how many worker threads execute the batch.
const BATCH: usize = 4;

/// A kept candidate is "markedly worse" when its badness exceeds the
/// running worst by this factor.
const BADNESS_KEEP_FACTOR: f64 = 1.05;

/// Fuzz campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of mutated candidates to generate and evaluate.
    pub candidates: usize,
    /// Campaign seed: drives mutation, parent selection, and the world
    /// seed of every candidate evaluation.
    pub seed: u64,
    /// Worker threads for batch evaluation (outputs are folded in
    /// input order, so this never changes results).
    pub jobs: usize,
    /// Intra-world shard workers (`0` = the process default).
    pub world_jobs: usize,
}

impl FuzzConfig {
    /// A sequential single-threaded campaign — the reference
    /// configuration the invariance tests compare against.
    pub fn sequential(candidates: usize, seed: u64) -> Self {
        FuzzConfig {
            candidates,
            seed,
            jobs: 1,
            world_jobs: 1,
        }
    }
}

/// QoE-derived severity of one candidate run.
#[derive(Debug, Clone, Copy)]
pub struct QoeScore {
    /// Mean rebuffer milliseconds per 100 s of viewing.
    pub rebuffer_ms_per_100s: f64,
    /// Mean reorder head-skips per 100 s of viewing.
    pub skips_per_100s: f64,
    /// Worst obs-window recovery-failure rate, percent (windows with
    /// no recovery samples are skipped, never counted as 0 %).
    pub worst_window_failure_pct: f64,
}

impl QoeScore {
    /// Scalar severity used for keep decisions and worst-k ranking:
    /// rebuffer time plus weighted skips and worst-window failures.
    /// The weights are coarse by design — the fuzzer only needs a
    /// stable "worse than everything so far" ordering, not a
    /// calibrated QoE model.
    pub fn badness(&self) -> f64 {
        self.rebuffer_ms_per_100s + 10.0 * self.skips_per_100s + 2.0 * self.worst_window_failure_pct
    }
}

/// One evaluated program: the program itself plus what its world did.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The program that ran.
    pub program: ScenarioProgram,
    /// Behavioural coverage extracted from the world's trace stream.
    pub coverage: CoverageCatalog,
    /// QoE severity of the run.
    pub score: QoeScore,
}

/// A fuzzed candidate's outcome relative to the running campaign.
#[derive(Debug, Clone)]
pub struct CandidateOutcome {
    /// The evaluation itself.
    pub eval: Evaluated,
    /// Coverage points this run reached that no earlier run had.
    pub new_points: usize,
    /// Whether its badness exceeded the running worst by the keep
    /// factor.
    pub worse: bool,
    /// Whether the candidate was kept (joined the frontier).
    pub kept: bool,
}

/// The result of a full fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Campaign seed.
    pub seed: u64,
    /// The base-program evaluation every candidate is compared against.
    pub base: Evaluated,
    /// Every candidate in generation order.
    pub candidates: Vec<CandidateOutcome>,
    /// Union coverage over the base run and all candidates.
    pub union: CoverageCatalog,
}

impl FuzzReport {
    /// Indices of kept candidates, in generation order.
    pub fn kept(&self) -> Vec<usize> {
        (0..self.candidates.len())
            .filter(|&i| self.candidates[i].kept)
            .collect()
    }

    /// Indices of the `k` worst candidates by badness (descending;
    /// ties broken by generation order).
    pub fn worst(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.candidates.len()).collect();
        idx.sort_by(|&a, &b| {
            let ba = self.candidates[a].eval.score.badness();
            let bb = self.candidates[b].eval.score.badness();
            bb.total_cmp(&ba).then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }
}

/// The fixed system configuration every fuzz world runs under: peer
/// delivery engages early (so churn phases actually hit relay-sourced
/// sessions) and the obs layer is on (the QoE score needs its
/// windowed recovery-failure series).
fn fuzz_world_config(world_jobs: usize) -> SystemConfig {
    SystemConfig {
        cdn_edge_mbps: 90,
        multi_source_after: SimDuration::from_secs(5),
        popularity_threshold: 1,
        obs_window_ms: 1000,
        world_jobs,
        ..SystemConfig::default()
    }
}

/// Compiles and runs one program as a full world, extracting coverage
/// from the trace stream and the QoE score from the run report.
///
/// The world seed is the campaign seed: candidates differ only in the
/// scenario they script, which isolates coverage/QoE deltas to the
/// mutation instead of entangling them with a reseeded population.
pub fn evaluate(program: &ScenarioProgram, fuzz: &FuzzConfig) -> Result<Evaluated, DslError> {
    // Stage-profiled (wall clock, stderr-only reporting).
    let _span = time_stage(Stage::FuzzEval);
    let compiled = program.compile()?;
    let spec = WorldSpec {
        seed: fuzz.seed,
        scenario: compiled.scenario,
        config: fuzz_world_config(fuzz.world_jobs),
        policy: GroupPolicy::uniform(DeliveryMode::RLive),
        schedule: compiled.schedule,
    };
    let mut world = spec.build();
    let sink = TraceSink::unbounded();
    world.attach_trace_sink(sink.clone());
    let report = world.run();
    let coverage = CoverageCatalog::from_records(&sink.drain());
    let worst_window_failure_pct = report
        .obs
        .recovery_failure_rate()
        .iter()
        .filter(|w| w.has_samples())
        .map(|w| 100.0 * w.rate())
        .fold(0.0f64, f64::max);
    let score = QoeScore {
        rebuffer_ms_per_100s: report.test_qoe.rebuffer_ms_per_100s.mean(),
        skips_per_100s: report.test_qoe.skips_per_100s.mean(),
        worst_window_failure_pct,
    };
    Ok(Evaluated {
        program: program.clone(),
        coverage,
        score,
    })
}

/// Parses a spec file and replays it under the standard fuzz-world
/// configuration — the entry point regression tests use to re-run
/// checked-in worst-case scenarios.
pub fn replay_spec(text: &str, fuzz: &FuzzConfig) -> Result<Evaluated, DslError> {
    let program = ScenarioProgram::parse_spec(text)?;
    evaluate(&program, fuzz)
}

/// Runs a full campaign: evaluate the base program, then generate
/// `cfg.candidates` mutants in fixed-size batches, keeping those
/// that grow coverage or worsen QoE.
///
/// Mutation draws parents uniformly from the kept frontier (base plus
/// every kept candidate so far), so interesting behaviours compound
/// instead of every mutant re-deriving from the quiet base.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = SimRng::new(cfg.seed);
    let base_program = ScenarioProgram::base("base");
    let base = evaluate(&base_program, cfg).expect("base program is valid");
    let mut union = base.coverage.clone();
    let mut worst_badness = base.score.badness();
    let mut frontier: Vec<ScenarioProgram> = vec![base_program];
    let mut candidates: Vec<CandidateOutcome> = Vec::with_capacity(cfg.candidates);
    let mut serial = 0usize;
    while candidates.len() < cfg.candidates {
        let batch_n = BATCH.min(cfg.candidates - candidates.len());
        let mut batch: Vec<ScenarioProgram> = Vec::with_capacity(batch_n);
        for _ in 0..batch_n {
            let parent = &frontier[rng.below(frontier.len() as u64) as usize];
            let mut mutant = parent.mutated(&mut rng);
            serial += 1;
            mutant.name = format!("m{serial:03}");
            batch.push(mutant);
        }
        // Parallel evaluation, sequential selection: `run_cells` folds
        // outputs in input order, so the frontier/union updates below
        // see candidates in the exact order they were generated.
        let (evals, _stats) = run_cells(
            "fuzz",
            cfg.jobs,
            &batch,
            |_, _, _| {},
            |p| evaluate(p, cfg).expect("mutants re-validate before evaluation"),
        );
        for eval in evals {
            let new_points = eval.coverage.new_points_vs(&union);
            let worse = eval.score.badness() > worst_badness * BADNESS_KEEP_FACTOR;
            let kept = new_points > 0 || worse;
            if kept {
                union.merge(&eval.coverage);
                worst_badness = worst_badness.max(eval.score.badness());
                frontier.push(eval.program.clone());
            }
            candidates.push(CandidateOutcome {
                eval,
                new_points,
                worse,
                kept,
            });
        }
    }
    FuzzReport {
        seed: cfg.seed,
        base,
        candidates,
        union,
    }
}

/// Renders the deterministic campaign report: the candidate table, the
/// coverage matrix over base + kept runs, axis totals, and the worst
/// candidates as replayable spec blocks.
pub fn render_report(report: &FuzzReport, top_k: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let n = report.candidates.len();
    let _ = writeln!(
        out,
        "scenario fuzz — {n} candidate{} from seed {}",
        if n == 1 { "" } else { "s" },
        report.seed
    );
    let _ = writeln!(
        out,
        "base '{}': {} coverage points, badness {:.2}",
        report.base.program.name,
        report.base.coverage.len(),
        report.base.score.badness()
    );

    let _ = writeln!(
        out,
        "\n{:>3}  {:<6} {:<44} {:>4} {:>9}  verdict",
        "#", "name", "phases", "new", "badness"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for (i, c) in report.candidates.iter().enumerate() {
        let phases = if c.eval.program.phases.is_empty() {
            "(none)".to_string()
        } else {
            c.eval
                .program
                .phases
                .iter()
                .map(|p| p.summary())
                .collect::<Vec<_>>()
                .join(" ")
        };
        let verdict = match (c.kept, c.new_points > 0, c.worse) {
            (false, _, _) => "drop".to_string(),
            (true, true, false) => format!("keep (+{} coverage)", c.new_points),
            (true, false, true) => "keep (worse qoe)".to_string(),
            (true, true, true) => format!("keep (+{} coverage, worse qoe)", c.new_points),
            (true, false, false) => unreachable!("kept candidates grow coverage or qoe"),
        };
        let _ = writeln!(
            out,
            "{:>3}  {:<6} {:<44} {:>4} {:>9.2}  {}",
            i + 1,
            c.eval.program.name,
            phases,
            c.new_points,
            c.eval.score.badness(),
            verdict
        );
    }

    // Coverage matrix: every point the campaign reached (rows) against
    // the base run and each kept candidate (columns).
    let kept = report.kept();
    let labels = report.union.labels();
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(5).max(5);
    let _ = writeln!(
        out,
        "\ncoverage matrix ({} points × {} runs):",
        labels.len(),
        1 + kept.len()
    );
    let mut head = format!("{:<label_w$}", "point");
    let _ = write!(head, " {:>6}", "base");
    for &i in &kept {
        let _ = write!(head, " {:>6}", report.candidates[i].eval.program.name);
    }
    let _ = writeln!(out, "{head}");
    for label in &labels {
        let mut row = format!("{label:<label_w$}");
        let mark = |covered: bool| if covered { "x" } else { "." };
        let _ = write!(row, " {:>6}", mark(report.base.coverage.covers(label)));
        for &i in &kept {
            let _ = write!(
                row,
                " {:>6}",
                mark(report.candidates[i].eval.coverage.covers(label))
            );
        }
        let _ = writeln!(out, "{row}");
    }
    let (kinds, transitions, recovery, blown) = report.union.axis_counts();
    let _ = writeln!(
        out,
        "axes: {kinds}/{} trace kinds, {transitions} mode transitions, \
         {recovery} recovery outcomes, {blown} deadline-blown",
        TraceEvent::ALL_KINDS.len()
    );
    let uncovered: Vec<&str> = TraceEvent::ALL_KINDS
        .iter()
        .copied()
        .filter(|k| !report.union.covers(&format!("kind:{k}")))
        .collect();
    if uncovered.is_empty() {
        let _ = writeln!(out, "uncovered trace kinds: (none)");
    } else {
        let _ = writeln!(out, "uncovered trace kinds: {}", uncovered.join(", "));
    }

    let worst = report.worst(top_k);
    let _ = writeln!(
        out,
        "\ntop {} worst candidate{} by badness (replayable specs):",
        worst.len(),
        if worst.len() == 1 { "" } else { "s" }
    );
    for &i in &worst {
        let c = &report.candidates[i];
        let _ = writeln!(
            out,
            "\n--- {}  badness {:.2}  coverage {} ---",
            c.eval.program.name,
            c.eval.score.badness(),
            c.eval.coverage.len()
        );
        let _ = write!(out, "{}", c.eval.program.render_spec());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_program_evaluates_with_nonempty_coverage() {
        let cfg = FuzzConfig::sequential(0, 7);
        let base = evaluate(&ScenarioProgram::base("base"), &cfg).unwrap();
        assert!(!base.coverage.is_empty(), "a quiet run still traces joins");
        assert!(base.score.badness().is_finite());
    }

    #[test]
    fn replay_spec_matches_direct_evaluation() {
        let cfg = FuzzConfig::sequential(0, 11);
        let mut program = ScenarioProgram::base("spec");
        program.phases.push(rlive_workload::dsl::Phase::MassOutage {
            at_s: 10,
            dur_s: 10,
            fraction: 0.5,
        });
        let direct = evaluate(&program, &cfg).unwrap();
        let replayed = replay_spec(&program.render_spec(), &cfg).unwrap();
        assert_eq!(replayed.program, program);
        assert_eq!(
            format!("{:?}", replayed.coverage),
            format!("{:?}", direct.coverage)
        );
        assert_eq!(
            replayed.score.badness().to_bits(),
            direct.score.badness().to_bits()
        );
    }

    #[test]
    fn campaign_is_seed_deterministic() {
        let a = run_fuzz(&FuzzConfig::sequential(3, 7));
        let b = run_fuzz(&FuzzConfig::sequential(3, 7));
        assert_eq!(render_report(&a, 3), render_report(&b, 3));
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let err = replay_spec("not a spec", &FuzzConfig::sequential(0, 1));
        assert!(err.is_err());
    }
}
