//! The typed event vocabulary of a [`World`](crate::world::World).
//!
//! Every interaction between actors — streams, CDN edges, relays,
//! clients and the control plane — crosses the event queue as one of
//! the [`Event`] variants below. Actors never call each other
//! directly; they schedule events and the world routes each one to the
//! owning actor's handler. This module also re-exports the structured
//! observability vocabulary ([`TraceEvent`] and friends) that the same
//! layers emit into the [`telemetry`](crate::telemetry) sink.

use rlive_data::recovery::RecoveryAction;
use rlive_media::footprint::LocalChain;
use rlive_media::frame::FrameHeader;

pub use rlive_sim::trace::{TraceEvent, TraceRecord, TraceSink};

/// Substream index used for full-stream relay subscriptions.
pub(crate) const FULL_STREAM: u16 = u16::MAX;

/// A scheduled simulation event; the unit of work of the event loop.
#[derive(Debug, Clone)]
pub enum Event {
    /// A live stream produces its next GoP frame.
    StreamFrame {
        /// Producing stream index.
        stream: u32,
    },
    /// A backhauled frame arrives at a relay and is forwarded.
    RelayFrame {
        /// Receiving relay index.
        relay: u32,
        /// Stream the frame belongs to.
        stream: u32,
        /// Frame timestamp (identifies the frame in the stream record).
        dts: u64,
    },
    /// A (partial) frame arrives at a client.
    ClientSlice(Box<SliceDelivery>),
    /// Central sequencing metadata arrives at a client.
    ChainDelivery {
        /// Receiving client.
        client: u64,
        /// Stream the chain belongs to.
        stream: u32,
        /// Frame timestamp of the chain entry.
        dts: u64,
    },
    /// A client's playout loop advances one frame interval.
    PlayerTick {
        /// Ticking client.
        client: u64,
    },
    /// A client's coarse control loop runs (fallback, switch, ABR).
    ControlTick {
        /// Ticking client.
        client: u64,
    },
    /// A loss-recovery attempt issued earlier completes.
    RecoveryOutcome {
        /// Requesting client.
        client: u64,
        /// Frame timestamp that was recovered.
        dts: u64,
        /// The action that was attempted.
        action: RecoveryAction,
        /// Whether the retransmission succeeded.
        success: bool,
    },
    /// One leg of a hedged (racing) best-effort retransmission batch
    /// completes. Unlike [`Event::RecoveryOutcome`], several of these
    /// may be in flight for the same frame; the session layer resolves
    /// the race (first win cancels the rest) and emits exactly one
    /// logical recovery outcome per batch.
    HedgeOutcome {
        /// Requesting client.
        client: u64,
        /// Frame timestamp being recovered.
        dts: u64,
        /// Zero-based index of this attempt within its batch.
        attempt: u32,
        /// Hedge round this attempt belongs to (guards against a
        /// re-issued batch for the same frame absorbing stale legs).
        round: u16,
        /// Whether this leg's retransmission succeeded.
        success: bool,
    },
    /// A relay's maintenance loop runs (churn, load, heartbeat).
    RelayTick {
        /// Ticking relay index.
        relay: u32,
    },
    /// A CDN edge's background-load loop runs.
    CdnTick {
        /// Ticking edge index.
        edge: u32,
    },
    /// The arrival process spawns the next viewer session.
    ClientArrival,
    /// The multi-source promotion gate evaluates a session.
    MultiSourceUpgrade {
        /// Candidate client.
        client: u64,
    },
    /// A viewer session ends.
    ClientDeparture {
        /// Departing client.
        client: u64,
    },
}

/// Which worker-pool lane an event may execute on when the world event
/// loop is sharded (see DESIGN.md "Sharded world execution").
///
/// A class groups events whose handlers mutate only their single target
/// actor, never draw the world RNG, and read sibling state strictly
/// read-only — the conditions under which a batch of consecutive
/// same-class events can run on worker threads and merge back
/// deterministically. Events outside both classes stay on the
/// sequential reference path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardClass {
    /// Client-owned events (slice ingest, chain ingest, playout ticks),
    /// partitioned by client id.
    Client,
    /// Relay frame fan-out, partitioned by relay index. Not shardable
    /// under central sequencing, where fan-out draws the shared world
    /// RNG and mutates the shared super node.
    RelayFrame,
}

impl Event {
    /// The shard class of this event, or `None` if its handler must run
    /// on the sequential path (it draws the world RNG or mutates shared
    /// state: CDN edges, the scheduler, the session table).
    /// `central_world` is whether the world runs centralised sequencing
    /// (`DeliveryMode::RLiveCentralSequencing`), which moves relay
    /// fan-out onto the shared super node and off the shardable set.
    pub(crate) fn shard_class(&self, central_world: bool) -> Option<ShardClass> {
        match self {
            Event::ClientSlice(_) | Event::ChainDelivery { .. } | Event::PlayerTick { .. } => {
                Some(ShardClass::Client)
            }
            Event::RelayFrame { .. } if !central_world => Some(ShardClass::RelayFrame),
            _ => None,
        }
    }

    /// Partition key within the event's shard class: the id of the one
    /// actor the handler mutates. Events of the same key must land on
    /// the same shard, in batch order. Zero for unshardable events.
    pub(crate) fn shard_key(&self) -> u64 {
        match self {
            Event::ClientSlice(d) => d.client,
            Event::ChainDelivery { client, .. } => *client,
            Event::PlayerTick { client } => *client,
            Event::RelayFrame { relay, .. } => *relay as u64,
            _ => 0,
        }
    }

    /// Counter label of this event kind (simulator instrumentation).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::StreamFrame { .. } => "stream_frame",
            Event::RelayFrame { .. } => "relay_frame",
            Event::ClientSlice(_) => "client_slice",
            Event::ChainDelivery { .. } => "chain_delivery",
            Event::PlayerTick { .. } => "player_tick",
            Event::ControlTick { .. } => "control_tick",
            Event::RecoveryOutcome { .. } => "recovery_outcome",
            Event::HedgeOutcome { .. } => "hedge_outcome",
            Event::RelayTick { .. } => "relay_tick",
            Event::CdnTick { .. } => "cdn_tick",
            Event::ClientArrival => "client_arrival",
            Event::MultiSourceUpgrade { .. } => "multi_source_upgrade",
            Event::ClientDeparture { .. } => "client_departure",
        }
    }
}

/// Payload of an [`Event::ClientSlice`]: one frame's worth of packets
/// delivered to a client from either a CDN edge or a relay.
#[derive(Debug, Clone)]
pub struct SliceDelivery {
    /// Receiving client.
    pub client: u64,
    /// Header of the delivered frame.
    pub header: FrameHeader,
    /// Substream the slice travelled on.
    pub substream: u16,
    /// Indices of the packets that actually arrived.
    pub received: Vec<u32>,
    /// Total packets of the (scaled) frame.
    pub total: u32,
    /// Embedded sequencing chain, if the path carries one.
    pub chain: Option<LocalChain>,
    /// Bytes that actually arrived (for throughput/energy accounting).
    pub bytes: u64,
}
