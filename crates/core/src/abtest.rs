//! The A/B test harness (§7.1).
//!
//! The paper validates RLive with two production A/B tests: users are
//! split by ID hash into control and test groups served under different
//! delivery policies inside the same live system. [`AbTest`] reproduces
//! the methodology on the simulator: one shared world, per-user group
//! assignment, per-group QoE/traffic/energy aggregation, and relative
//! differences computed against the control group.

use crate::config::{DeliveryMode, SystemConfig};
use crate::qoe::GroupQoe;
use crate::world::{GroupPolicy, RunReport, World};
use rlive_workload::scenario::Scenario;

/// A configured A/B experiment.
#[derive(Debug, Clone)]
pub struct AbTest {
    /// The scenario both groups share.
    pub scenario: Scenario,
    /// System configuration (mode fields are overridden per group).
    pub config: SystemConfig,
    /// Control-group delivery mode.
    pub control: DeliveryMode,
    /// Test-group delivery mode.
    pub test: DeliveryMode,
    /// RNG seed.
    pub seed: u64,
}

/// Relative QoE differences of test vs control, in percent.
#[derive(Debug, Clone, Copy)]
pub struct QoeDiff {
    /// Rebuffering events per 100 s.
    pub rebuffer_events_pct: f64,
    /// Rebuffering duration per 100 s.
    pub rebuffer_duration_pct: f64,
    /// Mean bitrate.
    pub bitrate_pct: f64,
    /// Mean E2E latency.
    pub e2e_latency_pct: f64,
}

/// Result of an A/B run.
#[derive(Debug, Clone)]
pub struct AbReport {
    /// The raw world report.
    pub run: RunReport,
    /// Relative differences (test vs control).
    pub diff: QoeDiff,
    /// View-count split fairness: `(test - control) / control` in %.
    pub view_split_pct: f64,
    /// Equivalent-traffic difference in % (test vs control).
    pub eqt_pct: f64,
    /// Energy deltas (cpu, mem, temp, battery) in percentage points.
    pub energy_delta: (f64, f64, f64, f64),
}

impl AbTest {
    /// Builds the §7.1 Test 1: evening peak, RLive vs CDN-only.
    pub fn evening_peak_vs_cdn(seed: u64) -> Self {
        AbTest {
            scenario: Scenario::evening_peak(),
            config: SystemConfig::default(),
            control: DeliveryMode::CdnOnly,
            test: DeliveryMode::RLive,
            seed,
        }
    }

    /// Builds the §7.1 Test 2 noon-window leg: at noon the control group
    /// (evening-only policy) is still on CDN, while the test group
    /// (double-peak policy) already uses RLive.
    pub fn double_peak_vs_evening(seed: u64) -> Self {
        AbTest {
            scenario: Scenario::noon_peak(),
            config: SystemConfig::default(),
            control: DeliveryMode::CdnOnly,
            test: DeliveryMode::RLive,
            seed,
        }
    }

    /// The group policy this A/B test assigns to its world.
    pub fn policy(&self) -> GroupPolicy {
        GroupPolicy::ab(self.control, self.test)
    }

    /// Runs the experiment.
    pub fn run(self) -> AbReport {
        let dedicated_cost = self.config.dedicated_unit_cost;
        let policy = self.policy();
        let world = World::new(self.scenario, self.config, policy, self.seed);
        AbReport::from_run(world.run(), dedicated_cost)
    }
}

impl AbReport {
    /// Derives the A/B differences from a finished world run. This is
    /// the analysis half of [`AbTest::run`], split out so fleets of
    /// A/B worlds (`core::fleet`) can run the worlds on the shared
    /// pool and compute reports from the merged-fold's per-world
    /// [`RunReport`]s afterwards.
    pub fn from_run(run: RunReport, dedicated_cost: f64) -> AbReport {
        let diff = QoeDiff {
            rebuffer_events_pct: GroupQoe::diff_pct(
                run.test_qoe.rebuffers_per_100s.mean(),
                run.control_qoe.rebuffers_per_100s.mean(),
            ),
            rebuffer_duration_pct: GroupQoe::diff_pct(
                run.test_qoe.rebuffer_ms_per_100s.mean(),
                run.control_qoe.rebuffer_ms_per_100s.mean(),
            ),
            bitrate_pct: GroupQoe::diff_pct(
                run.test_qoe.bitrate_bps.mean(),
                run.control_qoe.bitrate_bps.mean(),
            ),
            e2e_latency_pct: GroupQoe::diff_pct(
                run.test_qoe.e2e_latency_ms.mean(),
                run.control_qoe.e2e_latency_ms.mean(),
            ),
        };
        let view_split_pct = GroupQoe::diff_pct(
            run.test_qoe.views as f64,
            run.control_qoe.views.max(1) as f64,
        );
        // Normalise EqT by watch time so group sizes cancel.
        let eqt_test =
            run.test_traffic.equivalent_traffic(dedicated_cost) / run.test_qoe.watch_secs.max(1.0);
        let eqt_control = run.control_traffic.equivalent_traffic(dedicated_cost)
            / run.control_qoe.watch_secs.max(1.0);
        let eqt_pct = GroupQoe::diff_pct(eqt_test, eqt_control);
        let energy_delta = (
            run.test_energy.0 - run.control_energy.0,
            run.test_energy.1 - run.control_energy.1,
            run.test_energy.2 - run.control_energy.2,
            run.test_energy.3 - run.control_energy.3,
        );
        AbReport {
            run,
            diff,
            view_split_pct,
            eqt_pct,
            energy_delta,
        }
    }
}

// The parallel experiment runner executes one `AbTest` per worker
// thread and sends the `AbReport` back over a channel; pin the
// auto-traits at compile time so world-construction state can't silently
// regress per-cell isolation.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<AbTest>();
    assert_send::<AbReport>();
    assert_send::<QoeDiff>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rlive_sim::SimDuration;

    fn small_test(seed: u64) -> AbTest {
        let mut t = AbTest::evening_peak_vs_cdn(seed);
        t.scenario = t.scenario.scaled(0.12);
        t.scenario.duration = SimDuration::from_secs(120);
        t.scenario.streams = 4;
        t.config.multi_source_after = SimDuration::from_secs(5);
        t.config.popularity_threshold = 1;
        t.config.cdn_edge_mbps = 140;
        t
    }

    #[test]
    fn ab_groups_both_active() {
        let report = small_test(11).run();
        assert!(report.run.control_qoe.views > 5);
        assert!(report.run.test_qoe.views > 5);
        assert!(report.view_split_pct.abs() < 90.0);
    }

    #[test]
    fn test_group_offloads_traffic() {
        let report = small_test(12).run();
        assert_eq!(report.run.control_traffic.best_effort_serving, 0);
        assert!(report.run.test_traffic.best_effort_serving > 0);
    }

    #[test]
    fn test2_uses_noon_window() {
        let t = AbTest::double_peak_vs_evening(1);
        assert_eq!(t.scenario.start_hour, 12.0);
        assert_eq!(t.control, DeliveryMode::CdnOnly);
        assert_eq!(t.test, DeliveryMode::RLive);
        let t1 = AbTest::evening_peak_vs_cdn(1);
        assert_eq!(t1.scenario.start_hour, 21.0);
    }

    #[test]
    fn energy_delta_is_small_and_positive_leaning() {
        let report = small_test(13).run();
        let (cpu, mem, temp, bat) = report.energy_delta;
        // RLive clients do strictly more work, but marginally (Fig 10).
        assert!(cpu > -0.5, "cpu delta {cpu}");
        assert!(cpu < 5.0, "cpu delta {cpu}");
        assert!(mem.abs() < 5.0);
        assert!(temp.abs() < 1.0);
        assert!(bat.abs() < 2.0);
    }
}
