//! Traffic and cost accounting (equivalent traffic, §7.1.3).
//!
//! Equivalent traffic (EqT) is the normalised unit cost of a resource
//! multiplied by the traffic volume it carried — a billing-independent
//! proxy for bandwidth cost. Best-effort bandwidth is 20–40 % cheaper
//! per unit than dedicated bandwidth (§2.1), so shifting traffic from
//! dedicated edges to best-effort relays reduces EqT even when total
//! bytes stay the same.

use serde::{Deserialize, Serialize};

/// Which resource class carried some traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Dedicated CDN edge → client (full streams, frame recovery).
    DedicatedServing,
    /// Dedicated CDN edge → best-effort node (back-to-CDN feeds).
    DedicatedBackhaul,
    /// Best-effort node → client (substream pushes, retransmissions).
    BestEffortServing,
}

/// Accumulates bytes per traffic class and computes EqT.
///
/// # Examples
///
/// ```
/// use rlive::cost::{TrafficClass, TrafficLedger};
///
/// let mut ledger = TrafficLedger::new();
/// ledger.add(TrafficClass::DedicatedBackhaul, 100);
/// ledger.add(TrafficClass::BestEffortServing, 370);
/// assert_eq!(ledger.expansion_rate(), Some(3.7));
/// // Dedicated bytes carry a 35 % price premium.
/// assert_eq!(ledger.equivalent_traffic(1.35), 100.0 * 1.35 + 370.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficLedger {
    /// Bytes served by dedicated edges directly to clients.
    pub dedicated_serving: u64,
    /// Bytes fed from dedicated edges to best-effort relays.
    pub dedicated_backhaul: u64,
    /// Bytes served by best-effort relays to clients.
    pub best_effort_serving: u64,
}

impl TrafficLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` of the given class.
    pub fn add(&mut self, class: TrafficClass, bytes: u64) {
        match class {
            TrafficClass::DedicatedServing => self.dedicated_serving += bytes,
            TrafficClass::DedicatedBackhaul => self.dedicated_backhaul += bytes,
            TrafficClass::BestEffortServing => self.best_effort_serving += bytes,
        }
    }

    /// Total bytes that crossed dedicated infrastructure.
    pub fn dedicated_bytes(&self) -> u64 {
        self.dedicated_serving + self.dedicated_backhaul
    }

    /// Total bytes delivered to clients.
    pub fn client_bytes(&self) -> u64 {
        self.dedicated_serving + self.best_effort_serving
    }

    /// Equivalent traffic: `unit_cost × volume`, with best-effort as
    /// the cost unit and `dedicated_unit_cost` the dedicated multiplier.
    pub fn equivalent_traffic(&self, dedicated_unit_cost: f64) -> f64 {
        self.dedicated_bytes() as f64 * dedicated_unit_cost + self.best_effort_serving as f64
    }

    /// The §2.2 traffic expansion rate γ = serving / backward for the
    /// best-effort layer as a whole. `None` when no backhaul flowed.
    pub fn expansion_rate(&self) -> Option<f64> {
        if self.dedicated_backhaul == 0 {
            None
        } else {
            Some(self.best_effort_serving as f64 / self.dedicated_backhaul as f64)
        }
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &TrafficLedger) {
        self.dedicated_serving += other.dedicated_serving;
        self.dedicated_backhaul += other.dedicated_backhaul;
        self.best_effort_serving += other.best_effort_serving;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqt_prices_dedicated_higher() {
        let mut cdn_only = TrafficLedger::new();
        cdn_only.add(TrafficClass::DedicatedServing, 1_000);

        let mut rlive = TrafficLedger::new();
        // Same client bytes, mostly via best-effort with a 1:4 backhaul.
        rlive.add(TrafficClass::BestEffortServing, 800);
        rlive.add(TrafficClass::DedicatedServing, 200);
        rlive.add(TrafficClass::DedicatedBackhaul, 200);

        assert_eq!(cdn_only.client_bytes(), rlive.client_bytes());
        let c = 1.35;
        assert!(rlive.equivalent_traffic(c) < cdn_only.equivalent_traffic(c));
    }

    #[test]
    fn expansion_rate() {
        let mut l = TrafficLedger::new();
        assert_eq!(l.expansion_rate(), None);
        l.add(TrafficClass::DedicatedBackhaul, 100);
        l.add(TrafficClass::BestEffortServing, 370);
        assert!((l.expansion_rate().expect("has backhaul") - 3.7).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = TrafficLedger::new();
        a.add(TrafficClass::DedicatedServing, 10);
        let mut b = TrafficLedger::new();
        b.add(TrafficClass::DedicatedServing, 5);
        b.add(TrafficClass::BestEffortServing, 7);
        a.merge(&b);
        assert_eq!(a.dedicated_serving, 15);
        assert_eq!(a.best_effort_serving, 7);
    }
}
