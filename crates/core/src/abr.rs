//! Client-side adaptive bitrate (ABR) selection.
//!
//! A simple, production-flavoured hybrid rule: pick the highest ladder
//! rung whose bitrate fits under a safety fraction of the EWMA
//! throughput estimate, and step down immediately after a rebuffer.
//! Rung changes are rate-limited to avoid oscillation.

use crate::config::{BASE_RUNG, BITRATE_LADDER};
use rlive_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// ABR configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AbrConfig {
    /// Fraction of estimated throughput a rung may consume.
    pub safety: f64,
    /// EWMA smoothing factor per throughput sample.
    pub alpha: f64,
    /// Minimum time between rung changes.
    pub min_dwell: SimDuration,
}

impl Default for AbrConfig {
    fn default() -> Self {
        AbrConfig {
            safety: 0.8,
            alpha: 0.15,
            min_dwell: SimDuration::from_secs(4),
        }
    }
}

/// Per-client ABR state.
#[derive(Debug, Clone)]
pub struct AbrState {
    cfg: AbrConfig,
    /// EWMA throughput estimate, bits per second.
    throughput_bps: f64,
    rung: usize,
    last_change: SimTime,
}

impl AbrState {
    /// Starts at the base rung with an optimistic throughput estimate.
    pub fn new(cfg: AbrConfig) -> Self {
        AbrState {
            cfg,
            throughput_bps: BITRATE_LADDER[BASE_RUNG] as f64 * 1.5,
            rung: BASE_RUNG,
            last_change: SimTime::ZERO,
        }
    }

    /// Current rung index into [`BITRATE_LADDER`].
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// Current selected bitrate, bps.
    pub fn bitrate_bps(&self) -> u64 {
        BITRATE_LADDER[self.rung]
    }

    /// Byte scale factor relative to the base encoding.
    pub fn scale(&self) -> f64 {
        self.bitrate_bps() as f64 / BITRATE_LADDER[BASE_RUNG] as f64
    }

    /// Current throughput estimate, bps.
    pub fn throughput_bps(&self) -> f64 {
        self.throughput_bps
    }

    /// Feeds one delivery observation: `bytes` arrived over `elapsed`.
    pub fn observe(&mut self, bytes: u64, elapsed: SimDuration) {
        let secs = elapsed.as_secs_f64();
        if secs <= 1e-6 {
            return;
        }
        let sample = bytes as f64 * 8.0 / secs;
        self.throughput_bps =
            (1.0 - self.cfg.alpha) * self.throughput_bps + self.cfg.alpha * sample;
    }

    /// Periodic rung re-evaluation. Returns the new rung if it changed.
    pub fn evaluate(&mut self, now: SimTime) -> Option<usize> {
        if now.saturating_since(self.last_change) < self.cfg.min_dwell {
            return None;
        }
        let budget = self.throughput_bps * self.cfg.safety;
        let mut target = 0;
        for (i, &rate) in BITRATE_LADDER.iter().enumerate() {
            if (rate as f64) <= budget {
                target = i;
            }
        }
        // Step at most one rung up at a time; drops can be immediate.
        let new = if target > self.rung {
            self.rung + 1
        } else {
            target
        };
        if new != self.rung {
            self.rung = new;
            self.last_change = now;
            Some(new)
        } else {
            None
        }
    }

    /// Reacts to a rebuffering event: step down one rung immediately.
    pub fn on_rebuffer(&mut self, now: SimTime) {
        if self.rung > 0 {
            self.rung -= 1;
            self.last_change = now;
            // Also deflate the estimate so we do not climb right back.
            self.throughput_bps = self.throughput_bps.min(self.bitrate_bps() as f64 * 1.2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn feed(abr: &mut AbrState, bps: f64, samples: usize) {
        for _ in 0..samples {
            abr.observe((bps / 8.0 / 10.0) as u64, SimDuration::from_millis(100));
        }
    }

    #[test]
    fn recovers_to_top_rung_under_good_throughput() {
        let mut abr = AbrState::new(AbrConfig::default());
        abr.on_rebuffer(secs(1));
        assert_eq!(abr.rung(), BASE_RUNG - 1);
        feed(&mut abr, 10_000_000.0, 100);
        let changed = abr.evaluate(secs(10));
        assert_eq!(changed, Some(BASE_RUNG));
        assert_eq!(abr.bitrate_bps(), 3_000_000);
    }

    #[test]
    fn drops_under_poor_throughput() {
        let mut abr = AbrState::new(AbrConfig::default());
        feed(&mut abr, 900_000.0, 100);
        abr.evaluate(secs(10));
        assert_eq!(abr.bitrate_bps(), 800_000);
    }

    #[test]
    fn one_rung_up_at_a_time() {
        let mut abr = AbrState::new(AbrConfig::default());
        abr.on_rebuffer(secs(0));
        abr.on_rebuffer(secs(0));
        assert_eq!(abr.rung(), 0);
        // Massive throughput still climbs one rung per dwell window.
        feed(&mut abr, 100_000_000.0, 100);
        assert_eq!(abr.evaluate(secs(10)), Some(1));
        feed(&mut abr, 100_000_000.0, 100);
        assert_eq!(abr.evaluate(secs(20)), Some(2));
    }

    #[test]
    fn dwell_limits_flapping() {
        let mut abr = AbrState::new(AbrConfig::default());
        feed(&mut abr, 900_000.0, 100);
        assert!(abr.evaluate(secs(10)).is_some());
        feed(&mut abr, 10_000_000.0, 100);
        // Within the dwell window: no change despite good throughput.
        assert_eq!(abr.evaluate(secs(11)), None);
        assert!(abr.evaluate(secs(20)).is_some());
    }

    #[test]
    fn rebuffer_steps_down() {
        let mut abr = AbrState::new(AbrConfig::default());
        assert_eq!(abr.rung(), BASE_RUNG);
        abr.on_rebuffer(secs(5));
        assert_eq!(abr.rung(), BASE_RUNG - 1);
    }

    #[test]
    fn rebuffer_at_floor_is_safe() {
        let mut abr = AbrState::new(AbrConfig::default());
        for _ in 0..10 {
            abr.on_rebuffer(secs(5));
        }
        assert_eq!(abr.rung(), 0);
    }

    #[test]
    fn scale_tracks_rung() {
        let mut abr = AbrState::new(AbrConfig::default());
        assert!((abr.scale() - 1.0).abs() < 1e-12);
        abr.on_rebuffer(secs(1));
        assert!((abr.scale() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_observation_ignored() {
        let mut abr = AbrState::new(AbrConfig::default());
        let before = abr.throughput_bps();
        abr.observe(10_000, SimDuration::ZERO);
        assert_eq!(abr.throughput_bps(), before);
    }
}
