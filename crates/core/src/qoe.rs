//! QoE metric collection.
//!
//! The paper's headline metrics: rebuffering times per hundred seconds,
//! rebuffering duration per hundred seconds, video bitrate, end-to-end
//! latency, and first-frame (startup) latency. Collected per session and
//! aggregated per experiment group.

use rlive_sim::metrics::{Percentiles, Summary};
use rlive_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Per-session QoE accumulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionMetrics {
    /// Session start time.
    pub started_at: SimTime,
    /// When playback actually began (first frame), if it did.
    pub first_frame_at: Option<SimTime>,
    /// Total watch time (from first frame to departure).
    pub watch_time: SimDuration,
    /// Rebuffering event count.
    pub rebuffer_events: u64,
    /// Total stalled time.
    pub rebuffer_duration: SimDuration,
    /// Time-weighted bitrate integral (bps × seconds).
    pub bitrate_weighted: f64,
    /// E2E latency samples in ms (source production → playout).
    pub e2e_latency_ms: Vec<f64>,
    /// Bytes received over the data path.
    pub bytes_received: u64,
    /// Frames played.
    pub frames_played: u64,
    /// Retransmission requests issued.
    pub retx_requests: u64,
    /// Frames abandoned past their deadline (visible glitches).
    pub frames_skipped: u64,
    /// Whether the session ever fell back to CDN full stream.
    pub fell_back_to_cdn: bool,
}

impl SessionMetrics {
    /// Starts a session record.
    pub fn new(started_at: SimTime) -> Self {
        SessionMetrics {
            started_at,
            first_frame_at: None,
            watch_time: SimDuration::ZERO,
            rebuffer_events: 0,
            rebuffer_duration: SimDuration::ZERO,
            bitrate_weighted: 0.0,
            e2e_latency_ms: Vec::new(),
            bytes_received: 0,
            frames_played: 0,
            retx_requests: 0,
            frames_skipped: 0,
            fell_back_to_cdn: false,
        }
    }

    /// First-frame latency, if playback started.
    pub fn first_frame_latency(&self) -> Option<SimDuration> {
        self.first_frame_at
            .map(|t| t.saturating_since(self.started_at))
    }

    /// Rebuffering events per hundred seconds of watch time.
    pub fn rebuffers_per_100s(&self) -> f64 {
        let secs = self.watch_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.rebuffer_events as f64 * 100.0 / secs
        }
    }

    /// Rebuffering milliseconds per hundred seconds of watch time.
    pub fn rebuffer_ms_per_100s(&self) -> f64 {
        let secs = self.watch_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.rebuffer_duration.as_millis_f64() * 100.0 / secs
        }
    }

    /// Time-averaged bitrate in bps.
    pub fn mean_bitrate_bps(&self) -> f64 {
        let secs = self.watch_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bitrate_weighted / secs
        }
    }

    /// Mean E2E latency in ms.
    pub fn mean_e2e_latency_ms(&self) -> f64 {
        if self.e2e_latency_ms.is_empty() {
            0.0
        } else {
            self.e2e_latency_ms.iter().sum::<f64>() / self.e2e_latency_ms.len() as f64
        }
    }
}

/// Aggregated QoE over a group of sessions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroupQoe {
    /// Number of sessions (views).
    pub views: u64,
    /// Unique viewers.
    pub viewers: u64,
    /// Total watch seconds.
    pub watch_secs: f64,
    /// Rebuffer events per 100 s (session-weighted mean).
    pub rebuffers_per_100s: Summary,
    /// Rebuffer duration ms per 100 s.
    pub rebuffer_ms_per_100s: Summary,
    /// Mean bitrate, bps.
    pub bitrate_bps: Summary,
    /// Mean E2E latency, ms.
    pub e2e_latency_ms: Summary,
    /// First-frame latency, ms.
    pub first_frame_ms: Percentiles,
    /// Per-session rebuffer-rate distribution (events per 100 s).
    pub rebuffers_dist: Percentiles,
    /// Per-session mean-bitrate distribution (bps).
    pub bitrate_dist: Percentiles,
    /// Per-session mean-E2E-latency distribution (ms).
    pub e2e_latency_dist: Percentiles,
    /// Retransmission requests per 100 s.
    pub retx_per_100s: Summary,
    /// Deadline-skipped frames per 100 s (visible glitches).
    pub skips_per_100s: Summary,
    /// Sessions that fell back to CDN.
    pub cdn_fallbacks: u64,
}

impl GroupQoe {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one finished session in. Sessions that never played a
    /// frame or watched under a second contribute only to view counts.
    pub fn add_session(&mut self, s: &SessionMetrics) {
        self.views += 1;
        if s.fell_back_to_cdn {
            self.cdn_fallbacks += 1;
        }
        if s.watch_time.as_secs_f64() < 1.0 || s.first_frame_at.is_none() {
            return;
        }
        self.watch_secs += s.watch_time.as_secs_f64();
        self.rebuffers_per_100s.add(s.rebuffers_per_100s());
        self.rebuffers_dist.add(s.rebuffers_per_100s());
        self.rebuffer_ms_per_100s.add(s.rebuffer_ms_per_100s());
        self.bitrate_bps.add(s.mean_bitrate_bps());
        self.bitrate_dist.add(s.mean_bitrate_bps());
        if !s.e2e_latency_ms.is_empty() {
            self.e2e_latency_ms.add(s.mean_e2e_latency_ms());
            self.e2e_latency_dist.add(s.mean_e2e_latency_ms());
        }
        if let Some(ff) = s.first_frame_latency() {
            self.first_frame_ms.add(ff.as_millis_f64());
        }
        let secs = s.watch_time.as_secs_f64();
        self.retx_per_100s
            .add(s.retx_requests as f64 * 100.0 / secs);
        self.skips_per_100s
            .add(s.frames_skipped as f64 * 100.0 / secs);
    }

    /// Records one unique viewer.
    pub fn add_viewer(&mut self) {
        self.viewers += 1;
    }

    /// Merges another group aggregate into this one — the fleet-level
    /// fold (`core::fleet`). Counts add, `Summary` merges component-wise
    /// on raw moments and `Percentiles` concatenates samples, so a
    /// merge in world-index order is deterministic for any worker count
    /// (see `rlive_sim::metrics` module docs). Viewers are unique per
    /// world, not across worlds: fleet worlds simulate disjoint
    /// populations, so the sum is exact.
    pub fn merge(&mut self, other: &GroupQoe) {
        self.views += other.views;
        self.viewers += other.viewers;
        self.watch_secs += other.watch_secs;
        self.rebuffers_per_100s.merge(&other.rebuffers_per_100s);
        self.rebuffer_ms_per_100s.merge(&other.rebuffer_ms_per_100s);
        self.bitrate_bps.merge(&other.bitrate_bps);
        self.e2e_latency_ms.merge(&other.e2e_latency_ms);
        self.first_frame_ms.merge(&other.first_frame_ms);
        self.rebuffers_dist.merge(&other.rebuffers_dist);
        self.bitrate_dist.merge(&other.bitrate_dist);
        self.e2e_latency_dist.merge(&other.e2e_latency_dist);
        self.retx_per_100s.merge(&other.retx_per_100s);
        self.skips_per_100s.merge(&other.skips_per_100s);
        self.cdn_fallbacks += other.cdn_fallbacks;
    }

    /// Total non-finite samples skipped across every accumulator in the
    /// group — surfaced by fleet reports so dropped samples are visible
    /// instead of silently poisoning aggregates.
    pub fn skipped_samples(&self) -> u64 {
        self.rebuffers_per_100s.skipped()
            + self.rebuffer_ms_per_100s.skipped()
            + self.bitrate_bps.skipped()
            + self.e2e_latency_ms.skipped()
            + self.retx_per_100s.skipped()
            + self.skips_per_100s.skipped()
            + self.first_frame_ms.skipped()
            + self.rebuffers_dist.skipped()
            + self.bitrate_dist.skipped()
            + self.e2e_latency_dist.skipped()
    }

    /// Relative difference of a metric against a control group:
    /// `(self - control) / control`, in percent.
    pub fn diff_pct(metric_self: f64, metric_control: f64) -> f64 {
        if metric_control.abs() < 1e-12 {
            0.0
        } else {
            (metric_self - metric_control) / metric_control * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session_with(watch_secs: u64, rebuffers: u64) -> SessionMetrics {
        let mut s = SessionMetrics::new(SimTime::from_secs(10));
        s.first_frame_at = Some(SimTime::from_secs(10) + SimDuration::from_millis(700));
        s.watch_time = SimDuration::from_secs(watch_secs);
        s.rebuffer_events = rebuffers;
        s.rebuffer_duration = SimDuration::from_millis(rebuffers * 400);
        s.bitrate_weighted = 3_000_000.0 * watch_secs as f64;
        s.e2e_latency_ms = vec![900.0, 1_000.0, 1_100.0];
        s
    }

    #[test]
    fn per_100s_normalisation() {
        let s = session_with(200, 4);
        assert!((s.rebuffers_per_100s() - 2.0).abs() < 1e-9);
        assert!((s.rebuffer_ms_per_100s() - 800.0).abs() < 1e-9);
        assert!((s.mean_bitrate_bps() - 3_000_000.0).abs() < 1.0);
        assert!((s.mean_e2e_latency_ms() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn first_frame_latency() {
        let s = session_with(100, 0);
        assert_eq!(s.first_frame_latency(), Some(SimDuration::from_millis(700)));
        let empty = SessionMetrics::new(SimTime::ZERO);
        assert_eq!(empty.first_frame_latency(), None);
    }

    #[test]
    fn zero_watch_time_is_safe() {
        let s = SessionMetrics::new(SimTime::ZERO);
        assert_eq!(s.rebuffers_per_100s(), 0.0);
        assert_eq!(s.mean_bitrate_bps(), 0.0);
        assert_eq!(s.mean_e2e_latency_ms(), 0.0);
    }

    #[test]
    fn group_aggregation() {
        let mut g = GroupQoe::new();
        g.add_session(&session_with(100, 2));
        g.add_session(&session_with(100, 4));
        assert_eq!(g.views, 2);
        assert!((g.rebuffers_per_100s.mean() - 3.0).abs() < 1e-9);
        assert!((g.watch_secs - 200.0).abs() < 1e-9);
        // Distributions track per-session values.
        assert_eq!(g.rebuffers_dist.count(), 2);
        assert!((g.rebuffers_dist.quantile(1.0) - 4.0).abs() < 1e-9);
        assert_eq!(g.bitrate_dist.count(), 2);
        assert_eq!(g.e2e_latency_dist.count(), 2);
    }

    #[test]
    fn short_sessions_counted_as_views_only() {
        let mut g = GroupQoe::new();
        let mut s = SessionMetrics::new(SimTime::ZERO);
        s.watch_time = SimDuration::from_millis(200);
        g.add_session(&s);
        assert_eq!(g.views, 1);
        assert_eq!(g.rebuffers_per_100s.count(), 0);
    }

    #[test]
    fn diff_pct() {
        assert!((GroupQoe::diff_pct(85.0, 100.0) + 15.0).abs() < 1e-9);
        assert!((GroupQoe::diff_pct(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert_eq!(GroupQoe::diff_pct(5.0, 0.0), 0.0);
    }
}
