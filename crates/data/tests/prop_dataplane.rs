//! Property-based tests of the data plane: in-order release under
//! arbitrary delivery interleavings, chain-merge consistency, and
//! recovery-decision sanity.

use proptest::prelude::*;
use rlive_data::recovery::{FrameState, RecoveryConfig, RecoveryDecider, RecoveryStats};
use rlive_data::reorder::ReorderBuffer;
use rlive_data::sequencing::{GlobalChain, MatchResult};
use rlive_media::footprint::{ChainGenerator, LocalChain};
use rlive_media::frame::FrameType;
use rlive_media::gop::{GopConfig, GopGenerator};
use rlive_media::packet::{packetize, DataPacket, PACKET_PAYLOAD};
use rlive_media::substream::substream_of;
use rlive_sim::{SimDuration, SimRng, SimTime};

/// Builds a stream's packets (per frame) with canonical chains.
fn stream_packets(n: usize, seed: u64) -> Vec<Vec<DataPacket>> {
    let mut gen = GopGenerator::new(9, GopConfig::default(), SimRng::new(seed));
    let mut cg = ChainGenerator::new(PACKET_PAYLOAD);
    gen.take_frames(n)
        .into_iter()
        .map(|f| {
            let chain = cg.observe(&f.header);
            let ss = substream_of(&f.header, 4).0;
            packetize(&f, ss, &chain, 0)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With the session anchored at the first frame (the subscription
    /// start), arbitrary reordering of every subsequent packet still
    /// releases every frame exactly once, in source order. (Frames from
    /// *before* the anchor are late-joiner artifacts and are dropped by
    /// design: Algorithm 1 only extends the global chain forward.)
    #[test]
    fn reorder_releases_all_in_order(seed in 0u64..500, shuffle_seed in any::<u64>()) {
        let per_frame = stream_packets(25, seed);
        let mut rb = ReorderBuffer::new();
        let mut released = Vec::new();
        // Anchor: the first packet of frame 0 arrives first.
        released.extend(rb.ingest(SimTime::ZERO, &per_frame[0][0]));
        let mut deliveries: Vec<&DataPacket> = per_frame
            .iter()
            .flatten()
            .skip(1)
            .collect();
        let mut rng = SimRng::new(shuffle_seed);
        rng.shuffle(&mut deliveries);
        for (i, p) in deliveries.iter().enumerate() {
            released.extend(rb.ingest(SimTime::from_millis(1 + i as u64), p));
        }
        prop_assert_eq!(released.len(), 25, "all frames must release");
        let dts: Vec<u64> = released.iter().map(|r| r.header.dts_ms).collect();
        let expected: Vec<u64> = per_frame.iter().map(|ps| ps[0].frame.dts_ms).collect();
        prop_assert_eq!(dts, expected);
        prop_assert_eq!(rb.skipped_count(), 0);
    }

    /// Duplicated deliveries change nothing but the duplicate counter.
    #[test]
    fn reorder_duplicates_idempotent(seed in 0u64..500, dup_seed in any::<u64>()) {
        let per_frame = stream_packets(12, seed);
        let mut rb = ReorderBuffer::new();
        let mut released = 0;
        let mut rng = SimRng::new(dup_seed);
        for (i, ps) in per_frame.iter().enumerate() {
            for p in ps {
                released += rb.ingest(SimTime::from_millis(i as u64 * 33), p).len();
                if rng.chance(0.5) {
                    released += rb.ingest(SimTime::from_millis(i as u64 * 33), p).len();
                }
            }
        }
        prop_assert_eq!(released, 12);
    }

    /// Any subset of chains merged in any order yields a dts sequence
    /// that is strictly increasing and a subsequence of the source order.
    #[test]
    fn chain_merge_consistency(
        seed in 0u64..200,
        subset_seed in any::<u64>(),
        keep in 0.3f64..1.0,
    ) {
        let mut gen = GopGenerator::new(3, GopConfig::default(), SimRng::new(seed));
        let frames = gen.take_frames(40);
        let mut cg = ChainGenerator::new(PACKET_PAYLOAD);
        let chains: Vec<LocalChain> = frames.iter().map(|f| cg.observe(&f.header)).collect();
        let mut rng = SimRng::new(subset_seed);
        let mut gc = GlobalChain::new();
        for f in &frames {
            gc.ingest_header(f.header);
        }
        for c in &chains {
            if rng.chance(keep) {
                let _ = gc.ingest_chain(c);
            }
        }
        let seq = gc.dts_sequence();
        for w in seq.windows(2) {
            prop_assert!(w[0] < w[1], "chain out of order: {seq:?}");
        }
        // Every entry corresponds to a real frame.
        let source: std::collections::HashSet<u64> =
            frames.iter().map(|f| f.header.dts_ms).collect();
        for d in &seq {
            prop_assert!(source.contains(d));
        }
    }

    /// A corrupted footprint is never incorporated as LINKED.
    #[test]
    fn corrupted_chains_never_link(seed in 0u64..200, flip in any::<u32>()) {
        let mut gen = GopGenerator::new(3, GopConfig::default(), SimRng::new(seed));
        let frames = gen.take_frames(10);
        let mut cg = ChainGenerator::new(PACKET_PAYLOAD);
        let chains: Vec<LocalChain> = frames.iter().map(|f| cg.observe(&f.header)).collect();
        let mut gc = GlobalChain::new();
        for f in &frames {
            gc.ingest_header(f.header);
        }
        gc.ingest_chain(&chains[4]);
        let mut forged = chains[7].footprints().to_vec();
        let last = forged.last_mut().unwrap();
        let flip = if flip == 0 { 1 } else { flip };
        last.crc ^= flip;
        let dts = last.dts_ms;
        match gc.ingest_chain(&LocalChain::new(forged)) {
            MatchResult::Rejected => {
                prop_assert!(gc.status_of(dts).is_none(), "forged entry survived");
            }
            MatchResult::Deferred => {}
            MatchResult::Matched => {
                // Matched can only happen if the forged tail was evicted
                // and nothing remains of it.
                prop_assert!(
                    gc.status_of(dts) != Some(rlive_data::sequencing::LinkStatus::Linked)
                );
            }
        }
    }

    /// Recovery decisions: loss is non-negative, the chosen action's
    /// loss is minimal among evaluated actions for single frames, and
    /// shrinking the deadline never makes best-effort MORE attractive
    /// relative to dedicated.
    #[test]
    fn recovery_decision_sanity(
        deadline_ms in 0u64..3_000,
        missing in 1u32..20,
        size in 1_000u32..100_000,
    ) {
        let decider = RecoveryDecider::new(RecoveryConfig::default());
        let stats = RecoveryStats::default();
        let f = FrameState {
            dts_ms: 1,
            deadline: SimDuration::from_millis(deadline_ms),
            size,
            missing_packets: missing,
            frame_type: FrameType::P,
            substream: 0,
        };
        let d = &decider.decide(std::slice::from_ref(&f), &stats)[0];
        prop_assert!(d.loss >= 0.0);
        prop_assert!((0.0..=1.0).contains(&d.failure_probability));
        for a in rlive_data::recovery::RecoveryAction::ALL {
            prop_assert!(decider.loss(a, &f, &stats) + 1e-9 >= d.loss);
        }
    }

    /// Failure probability is monotone non-increasing in the deadline
    /// for every action.
    #[test]
    fn failure_probability_monotone(missing in 1u32..10) {
        let decider = RecoveryDecider::new(RecoveryConfig::default());
        let stats = RecoveryStats::default();
        for action in rlive_data::recovery::RecoveryAction::ALL {
            let mut last = f64::INFINITY;
            for ms in (0..3_000).step_by(100) {
                let f = FrameState {
                    dts_ms: 1,
                    deadline: SimDuration::from_millis(ms),
                    size: 10_000,
                    missing_packets: missing,
                    frame_type: FrameType::P,
                    substream: 0,
                };
                let p = decider.failure_probability(action, &f, &stats);
                prop_assert!(p <= last + 1e-9, "{action:?} not monotone at {ms}");
                last = p;
            }
        }
    }
}
