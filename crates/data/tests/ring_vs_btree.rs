//! Differential tests: the `SeqRing`-backed reorder/playback path vs a
//! test-only reference built on the `BTreeMap` layout it replaced.
//!
//! The reference below is the data plane's *old* storage scheme —
//! sequence-keyed `BTreeMap`s plus a per-dts substream side table —
//! re-implemented verbatim. Both implementations consume identical
//! packet schedules (loss, duplication, arbitrary reordering) and must
//! produce identical release orders and identical stall accounting;
//! a second property pins `SeqRing` against `BTreeMap` directly under
//! random operation sequences with keys near the `u64` wrap boundary.

use proptest::prelude::*;
use rlive_data::reorder::{PlaybackBuffer, ReorderBuffer};
use rlive_data::ring::SeqRing;
use rlive_data::sequencing::{GlobalChain, LinkStatus};
use rlive_media::footprint::ChainGenerator;
use rlive_media::frame::FrameHeader;
use rlive_media::gop::{GopConfig, GopGenerator};
use rlive_media::packet::{packetize, DataPacket, PACKET_PAYLOAD};
use rlive_media::substream::substream_of;
use rlive_sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Reference implementation: the old BTreeMap-based reorder buffer
// ---------------------------------------------------------------------

/// Per-frame assembly state, as the old layout kept it (a set of packet
/// indices; here a `BTreeMap<u32, ()>` stands in for the `HashSet` —
/// same membership semantics, deterministic).
struct RefAssembly {
    header: FrameHeader,
    expected: u32,
    received: BTreeMap<u32, ()>,
    max_seen: u32,
}

/// The old reorder layout: four sequence-keyed `BTreeMap`s around the
/// (shared, unchanged) `GlobalChain`.
struct RefReorder {
    assembling: BTreeMap<u64, RefAssembly>,
    substream_of: BTreeMap<u64, u16>,
    complete: BTreeMap<u64, FrameHeader>,
    chain: GlobalChain,
    duplicates: u64,
    packets: u64,
    released_watermark: Option<u64>,
}

impl RefReorder {
    fn new() -> Self {
        RefReorder {
            assembling: BTreeMap::new(),
            substream_of: BTreeMap::new(),
            complete: BTreeMap::new(),
            chain: GlobalChain::new(),
            duplicates: 0,
            packets: 0,
            released_watermark: None,
        }
    }

    fn ingest(&mut self, pkt: &DataPacket) -> Vec<u64> {
        self.packets += 1;
        let dts = pkt.frame.dts_ms;
        if self.released_watermark.map(|w| dts <= w).unwrap_or(false) {
            self.duplicates += 1;
            return Vec::new();
        }
        self.chain.ingest_header(pkt.frame);
        self.chain.ingest_chain(&pkt.chain);
        self.substream_of.insert(dts, pkt.substream);
        let asm = self.assembling.entry(dts).or_insert_with(|| RefAssembly {
            header: pkt.frame,
            expected: pkt.packet_count,
            received: BTreeMap::new(),
            max_seen: 0,
        });
        if asm.received.insert(pkt.packet_index, ()).is_some() {
            self.duplicates += 1;
        }
        asm.max_seen = asm.max_seen.max(pkt.packet_index);
        if asm.received.len() as u32 >= asm.expected {
            let header = asm.header;
            self.assembling.remove(&dts);
            self.complete.insert(dts, header);
        }
        self.release()
    }

    fn release(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some((fp, status)) = self.chain.head() {
            if status != LinkStatus::Linked || !self.complete.contains_key(&fp.dts_ms) {
                break;
            }
            self.complete.remove(&fp.dts_ms);
            self.chain.pop_linked_head();
            self.substream_of.remove(&fp.dts_ms);
            self.released_watermark = Some(fp.dts_ms);
            out.push(fp.dts_ms);
        }
        out
    }

    fn blocked_complete(&self) -> usize {
        self.complete.len()
    }

    fn assembling_count(&self) -> usize {
        self.assembling.len()
    }
}

/// The old playback layout: a `BTreeMap<u64, FrameHeader>` drained by
/// range scans, with the same stall bookkeeping.
struct RefPlayback {
    frames: BTreeMap<u64, FrameHeader>,
    playhead_dts: Option<u64>,
    rebuffer_events: u64,
    rebuffer_duration: SimDuration,
    stalled_since: Option<SimTime>,
}

impl RefPlayback {
    fn new() -> Self {
        RefPlayback {
            frames: BTreeMap::new(),
            playhead_dts: None,
            rebuffer_events: 0,
            rebuffer_duration: SimDuration::ZERO,
            stalled_since: None,
        }
    }

    fn push(&mut self, header: FrameHeader) {
        if self
            .playhead_dts
            .map(|p| header.dts_ms <= p)
            .unwrap_or(false)
        {
            return;
        }
        self.frames.insert(header.dts_ms, header);
    }

    fn tick(&mut self, now: SimTime) -> Option<u64> {
        let next = match self.playhead_dts {
            None => self.frames.keys().next().copied(),
            Some(last) => self.frames.range(last + 1..).next().map(|(&k, _)| k),
        };
        match next {
            Some(dts) => {
                if let Some(since) = self.stalled_since.take() {
                    self.rebuffer_duration += now.saturating_since(since);
                }
                self.frames.remove(&dts);
                let stale: Vec<u64> = self.frames.range(..dts).map(|(&k, _)| k).collect();
                for k in stale {
                    self.frames.remove(&k);
                }
                self.playhead_dts = Some(dts);
                Some(dts)
            }
            None => {
                if self.stalled_since.is_none() {
                    self.stalled_since = Some(now);
                    self.rebuffer_events += 1;
                }
                None
            }
        }
    }
}

// ---------------------------------------------------------------------
// Packet schedule generation
// ---------------------------------------------------------------------

/// Builds a stream's packets (flattened) with canonical chains.
fn stream_packets(n: usize, seed: u64) -> Vec<DataPacket> {
    let mut gen = GopGenerator::new(9, GopConfig::default(), SimRng::new(seed));
    let mut cg = ChainGenerator::new(PACKET_PAYLOAD);
    gen.take_frames(n)
        .into_iter()
        .flat_map(|f| {
            let chain = cg.observe(&f.header);
            let ss = substream_of(&f.header, 4).0;
            packetize(&f, ss, &chain, 0)
        })
        .collect()
}

/// Applies loss, duplication, and reordering to a packet schedule. The
/// first frame's first packet is kept in front so both implementations
/// anchor the session at the same join point.
fn perturb(
    packets: Vec<DataPacket>,
    loss_mask: u64,
    dup_mask: u64,
    shuffle_seed: u64,
) -> Vec<DataPacket> {
    let mut out = Vec::new();
    for (i, p) in packets.into_iter().enumerate() {
        if i > 0 && (loss_mask >> (i % 64)) & 1 == 1 {
            continue; // lost
        }
        if (dup_mask >> (i % 64)) & 1 == 1 {
            out.push(p.clone()); // duplicated
        }
        out.push(p);
    }
    // Deterministic Fisher–Yates over everything after the anchor.
    let mut rng = SimRng::new(shuffle_seed);
    for i in (2..out.len()).rev() {
        let j = 1 + (rng.below(i as u64) as usize);
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical packet schedules (with loss, duplication, reordering)
    /// must produce identical release orders, identical occupancy
    /// counters, and identical stall accounting downstream.
    #[test]
    fn ring_reorder_matches_btree_reference(
        seed in 0u64..200,
        loss_mask in any::<u64>(),
        dup_mask in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        let schedule = perturb(stream_packets(20, seed), loss_mask, dup_mask, shuffle_seed);

        let mut ring_rb = ReorderBuffer::new();
        let mut ref_rb = RefReorder::new();
        let interval = SimDuration::from_millis(33);
        let mut ring_pb = PlaybackBuffer::new(interval, SimDuration::from_millis(400));
        let mut ref_pb = RefPlayback::new();
        ring_pb.start();

        let mut now_ms = 0u64;
        for (i, pkt) in schedule.iter().enumerate() {
            let now = SimTime::from_millis(now_ms);
            let ring_released: Vec<u64> = ring_rb
                .ingest(now, pkt)
                .into_iter()
                .map(|r| r.header.dts_ms)
                .collect();
            let ref_released = ref_rb.ingest(pkt);
            prop_assert_eq!(&ring_released, &ref_released, "release order diverged at packet {}", i);
            for r in ring_rb.drain_ready(now) {
                // drain_ready after ingest must be a no-op for both.
                prop_assert!(false, "unexpected late release {}", r.header.dts_ms);
            }
            for dts in ring_released {
                let header = *schedule.iter().find(|p| p.frame.dts_ms == dts).map(|p| &p.frame).expect("released frame was scheduled");
                ring_pb.push(header);
                ref_pb.push(header);
            }
            // Tick playback every few packets so stalls interleave with
            // arrivals.
            if i % 3 == 2 {
                now_ms += 33;
                let t = SimTime::from_millis(now_ms);
                let ring_tick = ring_pb.tick(t).map(|h| h.dts_ms);
                let ref_tick = ref_pb.tick(t);
                prop_assert_eq!(ring_tick, ref_tick, "playback diverged at packet {}", i);
            }
            now_ms += 1;
        }

        prop_assert_eq!(ring_rb.blocked_complete(), ref_rb.blocked_complete());
        prop_assert_eq!(ring_rb.assembling_count(), ref_rb.assembling_count());
        prop_assert_eq!(ring_rb.duplicate_count(), ref_rb.duplicates);
        prop_assert_eq!(ring_rb.packet_count(), ref_rb.packets);
        prop_assert_eq!(ring_pb.rebuffer_events(), ref_pb.rebuffer_events);
        prop_assert_eq!(ring_pb.rebuffer_duration(), ref_pb.rebuffer_duration);
        prop_assert_eq!(ring_pb.playhead(), ref_pb.playhead_dts);
        prop_assert_eq!(ring_pb.len(), ref_pb.frames.len());
    }

    /// `SeqRing` must agree with `BTreeMap` on every operation outcome
    /// and on iteration order, for arbitrary key sets — including keys
    /// straddling the `u64` wrap boundary (both sides order by plain
    /// `u64`, so near-MAX keys sort after near-zero keys identically).
    #[test]
    fn seqring_matches_btreemap_ops(
        ops in proptest::collection::vec((0u8..5, any::<u64>(), any::<u32>()), 1..200),
        near_max in any::<bool>(),
    ) {
        let mut ring: SeqRing<u32> = SeqRing::new();
        let mut map: BTreeMap<u64, u32> = BTreeMap::new();
        for (op, raw_key, val) in ops {
            // Half the runs press keys up against u64::MAX to exercise
            // wrap-adjacent indexing.
            let key = if near_max { u64::MAX.wrapping_sub(raw_key % 512) } else { raw_key % 512 };
            match op {
                0 => {
                    prop_assert_eq!(ring.insert(key, val), map.insert(key, val));
                }
                1 => {
                    prop_assert_eq!(ring.remove(key), map.remove(&key));
                }
                2 => {
                    prop_assert_eq!(ring.get(key), map.get(&key));
                    prop_assert_eq!(ring.contains_key(key), map.contains_key(&key));
                }
                3 => {
                    prop_assert_eq!(
                        ring.next_after(key),
                        map.range(key.saturating_add(1)..).next().map(|(&k, _)| k)
                    );
                    // saturating_add(1) differs from the ring only at
                    // key == u64::MAX, where both yield None.
                    if key == u64::MAX {
                        prop_assert_eq!(ring.next_after(key), None);
                    }
                }
                _ => {
                    let evicted = ring.evict_below(key);
                    let before = map.len();
                    map.retain(|&k, _| k >= key);
                    prop_assert_eq!(evicted, before - map.len());
                }
            }
            prop_assert_eq!(ring.len(), map.len());
            prop_assert_eq!(ring.first_key(), map.keys().next().copied());
            prop_assert_eq!(ring.last_key(), map.keys().next_back().copied());
        }
        let ring_entries: Vec<(u64, u32)> = ring.iter().map(|(k, v)| (k, *v)).collect();
        let map_entries: Vec<(u64, u32)> = map.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(ring_entries, map_entries, "iteration order must be identical");
    }
}
