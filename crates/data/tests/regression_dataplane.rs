//! Deterministic regression pins for the data plane.
//!
//! `prop_dataplane.proptest-regressions` records the shrunk inputs of
//! historical property-test failures, but that file only replays under
//! the full proptest harness. Each entry is therefore *also* pinned here
//! as a plain unit test with the exact shrunk values, so the case keeps
//! running even if the regressions file is deleted or the property-test
//! harness changes how it seeds cases.

use rlive_data::reorder::ReorderBuffer;
use rlive_media::footprint::ChainGenerator;
use rlive_media::gop::{GopConfig, GopGenerator};
use rlive_media::packet::{packetize, DataPacket, PACKET_PAYLOAD};
use rlive_media::substream::substream_of;
use rlive_sim::{SimRng, SimTime};

/// Builds a stream's packets (per frame) with canonical chains, exactly
/// as `prop_dataplane.rs` does.
fn stream_packets(n: usize, seed: u64) -> Vec<Vec<DataPacket>> {
    let mut gen = GopGenerator::new(9, GopConfig::default(), SimRng::new(seed));
    let mut cg = ChainGenerator::new(PACKET_PAYLOAD);
    gen.take_frames(n)
        .into_iter()
        .map(|f| {
            let chain = cg.observe(&f.header);
            let ss = substream_of(&f.header, 4).0;
            packetize(&f, ss, &chain, 0)
        })
        .collect()
}

/// Replays one `reorder_releases_all_in_order` interleaving and asserts
/// the release-all-in-order invariant.
fn check_reorder_case(seed: u64, shuffle_seed: u64) {
    let per_frame = stream_packets(25, seed);
    let mut rb = ReorderBuffer::new();
    let mut released = Vec::new();
    // Anchor: the first packet of frame 0 arrives first.
    released.extend(rb.ingest(SimTime::ZERO, &per_frame[0][0]));
    let mut deliveries: Vec<&DataPacket> = per_frame.iter().flatten().skip(1).collect();
    let mut rng = SimRng::new(shuffle_seed);
    rng.shuffle(&mut deliveries);
    for (i, p) in deliveries.iter().enumerate() {
        released.extend(rb.ingest(SimTime::from_millis(1 + i as u64), p));
    }
    assert_eq!(
        released.len(),
        25,
        "all frames must release (seed {seed}, shuffle_seed {shuffle_seed})"
    );
    let dts: Vec<u64> = released.iter().map(|r| r.header.dts_ms).collect();
    let expected: Vec<u64> = per_frame.iter().map(|ps| ps[0].frame.dts_ms).collect();
    assert_eq!(dts, expected, "frames must release in source order");
    assert_eq!(rb.skipped_count(), 0, "no frame may be skipped");
}

/// The persisted proptest regression
/// (`cc 984f2783…` in `prop_dataplane.proptest-regressions`):
/// `seed = 76, shuffle_seed = 11882945296177`.
#[test]
fn reorder_regression_seed76() {
    check_reorder_case(76, 11882945296177);
}

/// Neighbouring interleavings of the regression's stream, so a fix that
/// only special-cases the exact shuffle cannot sneak through.
#[test]
fn reorder_regression_seed76_neighbourhood() {
    for delta in 0..16u64 {
        check_reorder_case(76, 11882945296177 ^ delta);
    }
}
