//! RLive robust data plane (§5 of the paper).
//!
//! - [`sequencing`]: the client-side global frame chain and the
//!   chain-matching algorithm (Algorithm 1) that merges per-relay local
//!   chains into one playout order, with CRC validation and a pool of
//!   not-yet-matchable chains;
//! - [`reorder`]: the packet-level reorder buffer that tracks frame
//!   completeness and feeds the global chain, plus the client playback
//!   buffer with its CDN-fallback threshold (§7.4);
//! - [`recovery`]: the QoE-driven loss recovery decision framework
//!   (§5.3) — four actions, a probabilistic loss function combining
//!   bandwidth cost and unplayability risk, EDF-based failure models;
//! - [`subscribe`]: subscribe-push control messages between clients and
//!   best-effort nodes (§5.1, §6);
//! - [`ring`]: the sequence-indexed ring buffer ([`ring::SeqRing`])
//!   that backs the reorder/sequencing state — flat storage, zero
//!   steady-state allocation, explicit eviction accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recovery;
pub mod reorder;
pub mod ring;
pub mod sequencing;
pub mod subscribe;

pub use recovery::{RecoveryAction, RecoveryConfig, RecoveryDecider};
pub use reorder::{PlaybackBuffer, ReorderBuffer};
pub use sequencing::{GlobalChain, LinkStatus, MatchResult};
pub use subscribe::ControlMessage;
