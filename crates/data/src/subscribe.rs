//! Subscribe-push control messages (§5.1, §6).
//!
//! RLive's data path is publisher-driven: clients *subscribe* substreams
//! to best-effort nodes, which then push fixed-size packets immediately
//! without per-connection congestion control. This module defines the
//! control messages exchanged on that path and a compact wire codec.

use serde::{Deserialize, Serialize};

/// Control messages between clients, best-effort nodes and the CDN.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlMessage {
    /// Client → node: subscribe to a substream.
    Subscribe {
        /// Stream id.
        stream_id: u64,
        /// Substream index.
        substream: u16,
        /// Subscribing client id.
        client: u64,
    },
    /// Node → client: subscription accepted; pushing begins.
    SubscribeAck {
        /// Stream id.
        stream_id: u64,
        /// Substream index.
        substream: u16,
        /// Whether the node had to newly subscribe to the CDN
        /// (back-to-CDN traffic was created).
        back_to_cdn: bool,
    },
    /// Client → node: stop pushing a substream.
    Unsubscribe {
        /// Stream id.
        stream_id: u64,
        /// Substream index.
        substream: u16,
        /// Unsubscribing client id.
        client: u64,
    },
    /// Client → node (best-effort recovery, action 0): retransmit the
    /// listed packets of a frame.
    PacketRecoveryRequest {
        /// Stream id.
        stream_id: u64,
        /// dts of the incomplete frame.
        dts_ms: u64,
        /// Missing packet indices.
        packets: Vec<u32>,
    },
    /// Client → dedicated node (recovery action 1): resend an entire
    /// frame, indexed by dts (the <100-LoC CDN-side change of §6).
    FrameRecoveryRequest {
        /// Stream id.
        stream_id: u64,
        /// dts of the frame to resend.
        dts_ms: u64,
    },
    /// Node → client: proactive switch suggestion (§4.2.2).
    SwitchSuggestion {
        /// The suggesting node.
        node: u64,
        /// Reason code: 0 = cost consolidation, 1 = QoS outlier.
        reason: u8,
    },
    /// Client → node: application-level connection probe (§4.1.2).
    Probe {
        /// Stream id the client intends to pull.
        stream_id: u64,
        /// Substream index.
        substream: u16,
        /// Echo nonce.
        nonce: u64,
    },
    /// Node → client: probe response.
    ProbeReply {
        /// Echoed nonce.
        nonce: u64,
        /// Node's current available bandwidth estimate in kbps (the
        /// probe gauges capacity, not just latency, §4.1.2).
        available_kbps: u32,
    },
}

impl ControlMessage {
    /// Encodes into a compact tag-length-value byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            ControlMessage::Subscribe {
                stream_id,
                substream,
                client,
            } => {
                out.push(0);
                out.extend_from_slice(&stream_id.to_be_bytes());
                out.extend_from_slice(&substream.to_be_bytes());
                out.extend_from_slice(&client.to_be_bytes());
            }
            ControlMessage::SubscribeAck {
                stream_id,
                substream,
                back_to_cdn,
            } => {
                out.push(1);
                out.extend_from_slice(&stream_id.to_be_bytes());
                out.extend_from_slice(&substream.to_be_bytes());
                out.push(*back_to_cdn as u8);
            }
            ControlMessage::Unsubscribe {
                stream_id,
                substream,
                client,
            } => {
                out.push(2);
                out.extend_from_slice(&stream_id.to_be_bytes());
                out.extend_from_slice(&substream.to_be_bytes());
                out.extend_from_slice(&client.to_be_bytes());
            }
            ControlMessage::PacketRecoveryRequest {
                stream_id,
                dts_ms,
                packets,
            } => {
                out.push(3);
                out.extend_from_slice(&stream_id.to_be_bytes());
                out.extend_from_slice(&dts_ms.to_be_bytes());
                out.extend_from_slice(&(packets.len() as u16).to_be_bytes());
                for p in packets {
                    out.extend_from_slice(&p.to_be_bytes());
                }
            }
            ControlMessage::FrameRecoveryRequest { stream_id, dts_ms } => {
                out.push(4);
                out.extend_from_slice(&stream_id.to_be_bytes());
                out.extend_from_slice(&dts_ms.to_be_bytes());
            }
            ControlMessage::SwitchSuggestion { node, reason } => {
                out.push(5);
                out.extend_from_slice(&node.to_be_bytes());
                out.push(*reason);
            }
            ControlMessage::Probe {
                stream_id,
                substream,
                nonce,
            } => {
                out.push(6);
                out.extend_from_slice(&stream_id.to_be_bytes());
                out.extend_from_slice(&substream.to_be_bytes());
                out.extend_from_slice(&nonce.to_be_bytes());
            }
            ControlMessage::ProbeReply {
                nonce,
                available_kbps,
            } => {
                out.push(7);
                out.extend_from_slice(&nonce.to_be_bytes());
                out.extend_from_slice(&available_kbps.to_be_bytes());
            }
        }
        out
    }

    /// Decodes a message; `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<ControlMessage> {
        fn u64_at(b: &[u8], i: usize) -> Option<u64> {
            b.get(i..i + 8)?.try_into().ok().map(u64::from_be_bytes)
        }
        fn u32_at(b: &[u8], i: usize) -> Option<u32> {
            b.get(i..i + 4)?.try_into().ok().map(u32::from_be_bytes)
        }
        fn u16_at(b: &[u8], i: usize) -> Option<u16> {
            b.get(i..i + 2)?.try_into().ok().map(u16::from_be_bytes)
        }
        match *bytes.first()? {
            0 => Some(ControlMessage::Subscribe {
                stream_id: u64_at(bytes, 1)?,
                substream: u16_at(bytes, 9)?,
                client: u64_at(bytes, 11)?,
            }),
            1 => Some(ControlMessage::SubscribeAck {
                stream_id: u64_at(bytes, 1)?,
                substream: u16_at(bytes, 9)?,
                back_to_cdn: *bytes.get(11)? != 0,
            }),
            2 => Some(ControlMessage::Unsubscribe {
                stream_id: u64_at(bytes, 1)?,
                substream: u16_at(bytes, 9)?,
                client: u64_at(bytes, 11)?,
            }),
            3 => {
                let stream_id = u64_at(bytes, 1)?;
                let dts_ms = u64_at(bytes, 9)?;
                let n = u16_at(bytes, 17)? as usize;
                let mut packets = Vec::with_capacity(n);
                for i in 0..n {
                    packets.push(u32_at(bytes, 19 + i * 4)?);
                }
                Some(ControlMessage::PacketRecoveryRequest {
                    stream_id,
                    dts_ms,
                    packets,
                })
            }
            4 => Some(ControlMessage::FrameRecoveryRequest {
                stream_id: u64_at(bytes, 1)?,
                dts_ms: u64_at(bytes, 9)?,
            }),
            5 => Some(ControlMessage::SwitchSuggestion {
                node: u64_at(bytes, 1)?,
                reason: *bytes.get(9)?,
            }),
            6 => Some(ControlMessage::Probe {
                stream_id: u64_at(bytes, 1)?,
                substream: u16_at(bytes, 9)?,
                nonce: u64_at(bytes, 11)?,
            }),
            7 => Some(ControlMessage::ProbeReply {
                nonce: u64_at(bytes, 1)?,
                available_kbps: u32_at(bytes, 9)?,
            }),
            _ => None,
        }
    }

    /// Wire size of the encoded form.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<ControlMessage> {
        vec![
            ControlMessage::Subscribe {
                stream_id: 7,
                substream: 2,
                client: 99,
            },
            ControlMessage::SubscribeAck {
                stream_id: 7,
                substream: 2,
                back_to_cdn: true,
            },
            ControlMessage::Unsubscribe {
                stream_id: 7,
                substream: 2,
                client: 99,
            },
            ControlMessage::PacketRecoveryRequest {
                stream_id: 7,
                dts_ms: 123_000,
                packets: vec![0, 3, 9],
            },
            ControlMessage::FrameRecoveryRequest {
                stream_id: 7,
                dts_ms: 123_000,
            },
            ControlMessage::SwitchSuggestion { node: 5, reason: 1 },
            ControlMessage::Probe {
                stream_id: 7,
                substream: 0,
                nonce: 0xDEAD,
            },
            ControlMessage::ProbeReply {
                nonce: 0xDEAD,
                available_kbps: 4_000,
            },
        ]
    }

    #[test]
    fn round_trip_every_variant() {
        for msg in all_messages() {
            let bytes = msg.encode();
            assert_eq!(ControlMessage::decode(&bytes), Some(msg.clone()), "{msg:?}");
        }
    }

    #[test]
    fn truncation_rejected() {
        for msg in all_messages() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                // Any strict prefix either fails or (for list-carrying
                // messages) decodes to fewer items — never panics.
                let _ = ControlMessage::decode(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(ControlMessage::decode(&[200, 0, 0]), None);
        assert_eq!(ControlMessage::decode(&[]), None);
    }

    #[test]
    fn messages_are_compact() {
        for msg in all_messages() {
            assert!(
                msg.wire_size() <= 64,
                "{msg:?} is {} bytes",
                msg.wire_size()
            );
        }
    }

    #[test]
    fn empty_packet_list_round_trips() {
        let msg = ControlMessage::PacketRecoveryRequest {
            stream_id: 1,
            dts_ms: 2,
            packets: vec![],
        };
        assert_eq!(ControlMessage::decode(&msg.encode()), Some(msg));
    }
}
