//! QoE-driven sub-stream loss recovery (§5.3).
//!
//! When data is lost, the client chooses per incomplete frame among four
//! actions: (0) packet retransmission from the best-effort node, (1)
//! whole-frame recovery from a dedicated node, (2) switching the
//! affected substream back to a dedicated node, and (3) pulling the full
//! stream from dedicated nodes. The decision minimises
//!
//! ```text
//! Loss(A) = cost(A) + λ Σᵢ P(Fᵢ | aᵢ, S) · risk(Fᵢ)
//! ```
//!
//! where `P` is the probability that frame `i` misses its playout
//! deadline under action `aᵢ`: for dedicated nodes it comes from an
//! empirical distribution function of historical frame-retrieval times
//! `L`; for best-effort nodes from a per-packet geometric model using
//! the observed retransmission success rate `p`, the missing packet
//! count and the retries feasible before the deadline.

use rlive_media::frame::FrameType;
use rlive_sim::rng::EmpiricalCdf;
use rlive_sim::trace::{TraceEvent, TraceSink};
use rlive_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The four recovery actions of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// `a = 0`: packet retransmission from the best-effort publisher
    /// (fast retransmit on out-of-order, else timeout retransmit).
    BestEffortPackets,
    /// `a = 1`: retrieve the whole frame from a dedicated node.
    DedicatedFrame,
    /// `a = 2`: switch this substream's publisher to a dedicated node.
    SwitchSubstream,
    /// `a = 3`: pull the entire stream from dedicated nodes.
    FullStream,
}

impl RecoveryAction {
    /// All actions in index order.
    pub const ALL: [RecoveryAction; 4] = [
        RecoveryAction::BestEffortPackets,
        RecoveryAction::DedicatedFrame,
        RecoveryAction::SwitchSubstream,
        RecoveryAction::FullStream,
    ];

    /// Short label for trace records and timelines.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryAction::BestEffortPackets => "best_effort_packets",
            RecoveryAction::DedicatedFrame => "dedicated_frame",
            RecoveryAction::SwitchSubstream => "switch_substream",
            RecoveryAction::FullStream => "full_stream",
        }
    }
}

/// Recovery state of one incomplete frame — the per-frame slice of the
/// paper's state `S = (τ, s, X_succ, X_fail, L)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameState {
    /// dts of the frame.
    pub dts_ms: u64,
    /// τᵢ: time remaining until the frame's playout deadline.
    pub deadline: SimDuration,
    /// sᵢ: frame size in bytes.
    pub size: u32,
    /// Missing packet count (x_fail).
    pub missing_packets: u32,
    /// Frame type (drives `risk(Fᵢ)`).
    pub frame_type: FrameType,
    /// Substream the frame belongs to.
    pub substream: u16,
}

/// Outcomes retained by the sliding retransmission-success window:
/// enough history for a stable estimate, small enough that a supplier
/// that degrades mid-stream stops hiding behind its early record.
pub const RETX_WINDOW: usize = 512;

/// Shared recovery statistics: the `X_succ`, `X_fail` and `L` components
/// of the state, accumulated over the session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Successfully retransmitted packets (x_succ), all-history.
    pub retx_succeeded: u64,
    /// Total best-effort retransmission attempts (n_succ), all-history.
    pub retx_attempts: u64,
    /// Ring of the last [`RETX_WINDOW`] outcomes, one bit each
    /// (1 = success), indexed by `retx_attempts % RETX_WINDOW`.
    retx_window: Vec<u64>,
    /// Successes among the outcomes currently in the window.
    retx_window_successes: u32,
    /// Round-trip to the best-effort publisher (one retry cycle).
    pub best_effort_rtt: SimDuration,
    /// Historical dedicated-node frame retrieval times `L`, as an EDF.
    pub dedicated_latency: EmpiricalCdf,
    /// Extra latency of establishing a substream switch.
    pub switch_setup: SimDuration,
}

impl Default for RecoveryStats {
    fn default() -> Self {
        RecoveryStats {
            retx_succeeded: 0,
            retx_attempts: 0,
            retx_window: vec![0; RETX_WINDOW / 64],
            retx_window_successes: 0,
            // One best-effort retry cycle is slow (Fig 3(b): best-effort
            // recovery takes a median 778 ms end to end), so the model
            // prices a cycle at that median.
            best_effort_rtt: SimDuration::from_millis(800),
            // Fig 3(b): dedicated retransmission median ≈ 71 ms.
            dedicated_latency: EmpiricalCdf::from_points(&[
                (20.0, 0.0),
                (50.0, 0.25),
                (71.1, 0.50),
                (120.0, 0.75),
                (300.0, 0.93),
                (1000.0, 0.99),
                (3000.0, 1.0),
            ]),
            // DNS bypass (§8.1) keeps switch setup short.
            switch_setup: SimDuration::from_millis(30),
        }
    }
}

impl RecoveryStats {
    /// Per-packet best-effort retransmission success rate `p`, with a
    /// weak prior until observations accumulate. The estimate is
    /// *windowed* over the last [`RETX_WINDOW`] outcomes: an all-history
    /// ratio lets a supplier that degrades mid-stream keep a stale
    /// optimistic `p` forever, while the window tracks the regime the
    /// session is actually in. Identical to the all-history estimate
    /// until the window first fills.
    pub fn packet_success_rate(&self) -> f64 {
        // Prior: Fig 3(a) best-effort success ≈ 0.91.
        let prior_n = 20.0;
        let prior_p = 0.91;
        let window_attempts = self.retx_attempts.min(RETX_WINDOW as u64) as f64;
        (self.retx_window_successes as f64 + prior_p * prior_n) / (window_attempts + prior_n)
    }

    /// Records one best-effort retransmission outcome.
    pub fn observe_retx(&mut self, success: bool) {
        let idx = (self.retx_attempts % RETX_WINDOW as u64) as usize;
        let (word, bit) = (idx / 64, idx % 64);
        if self.retx_window.len() != RETX_WINDOW / 64 {
            // Deserialized from an older shape: rebuild a zeroed window.
            self.retx_window = vec![0; RETX_WINDOW / 64];
            self.retx_window_successes = 0;
        }
        if self.retx_attempts >= RETX_WINDOW as u64 && self.retx_window[word] >> bit & 1 == 1 {
            // The outcome leaving the window was a success.
            self.retx_window_successes -= 1;
        }
        if success {
            self.retx_window[word] |= 1 << bit;
            self.retx_window_successes += 1;
            self.retx_succeeded += 1;
        } else {
            self.retx_window[word] &= !(1 << bit);
        }
        self.retx_attempts += 1;
    }

    /// `F_N(τ)`: probability a dedicated-node frame retrieval completes
    /// within `τ`.
    pub fn dedicated_within(&self, deadline: SimDuration) -> f64 {
        self.dedicated_latency.cdf(deadline.as_millis_f64())
    }
}

/// Cost/λ configuration of the loss function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// λ: weight of the unplayability term relative to bandwidth cost.
    pub lambda: f64,
    /// Relative per-byte cost of dedicated-CDN bandwidth (best-effort
    /// bandwidth is the unit; §2.1 prices best-effort 20–40 % cheaper).
    pub dedicated_cost_factor: f64,
    /// Per-request overhead (in KB-equivalents) of a dedicated-node
    /// frame retrieval — the processing/connection burden that makes
    /// "repeatedly requesting individual frames" inefficient (§5.3).
    pub request_overhead_kb: f64,
    /// Per-switch overhead (in KB-equivalents) of re-homing a substream.
    pub switch_request_kb: f64,
    /// Whole-stream frames priced in when traffic redirects to the CDN —
    /// a substream switch redirects `horizon / K` of them, full-stream
    /// fallback all of them; only the dedicated-vs-best-effort price
    /// *difference* is charged, since the data must flow either way.
    pub switch_horizon_frames: f64,
    /// Number of substreams K.
    pub substream_count: u16,
    /// risk(F) for I-frames (P/B scale down from it via
    /// [`FrameType::risk_weight`]).
    pub i_frame_risk: f64,
    /// Lost frames of one substream in a single retransmission list that
    /// make switching that substream worth considering (§5.3 action 2).
    pub consecutive_loss_threshold: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            lambda: 50.0,
            dedicated_cost_factor: 1.35,
            request_overhead_kb: 8.0,
            switch_request_kb: 4.0,
            switch_horizon_frames: 60.0,
            substream_count: 4,
            i_frame_risk: 8.0,
            consecutive_loss_threshold: 3,
        }
    }
}

/// One decided action for one frame, with its evaluated loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// dts of the frame.
    pub dts_ms: u64,
    /// Chosen action.
    pub action: RecoveryAction,
    /// Loss of the chosen action.
    pub loss: f64,
    /// Modelled failure probability under the chosen action.
    pub failure_probability: f64,
}

/// The QoE-driven recovery decision engine.
///
/// # Examples
///
/// ```
/// use rlive_data::recovery::{FrameState, RecoveryAction, RecoveryConfig,
///                            RecoveryDecider, RecoveryStats};
/// use rlive_media::frame::FrameType;
/// use rlive_sim::SimDuration;
///
/// let decider = RecoveryDecider::new(RecoveryConfig::default());
/// let stats = RecoveryStats::default();
/// // Plenty of buffer left: the cheap best-effort path wins.
/// let relaxed = FrameState {
///     dts_ms: 1_000,
///     deadline: SimDuration::from_millis(3_000),
///     size: 12_000,
///     missing_packets: 2,
///     frame_type: FrameType::P,
///     substream: 0,
/// };
/// let d = &decider.decide(std::slice::from_ref(&relaxed), &stats)[0];
/// assert_eq!(d.action, RecoveryAction::BestEffortPackets);
/// // Buffer nearly empty: escalate to the dedicated CDN.
/// let urgent = FrameState { deadline: SimDuration::from_millis(90), ..relaxed };
/// let d = &decider.decide(std::slice::from_ref(&urgent), &stats)[0];
/// assert_eq!(d.action, RecoveryAction::DedicatedFrame);
/// ```
#[derive(Debug, Clone)]
pub struct RecoveryDecider {
    cfg: RecoveryConfig,
}

impl RecoveryDecider {
    /// Creates a decider.
    pub fn new(cfg: RecoveryConfig) -> Self {
        RecoveryDecider { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &RecoveryConfig {
        &self.cfg
    }

    /// `risk(Fᵢ)`: unplayability impact, by frame type (I-frames decode
    /// the whole GoP, §5.3).
    pub fn risk(&self, frame_type: FrameType) -> f64 {
        self.cfg.i_frame_risk * frame_type.risk_weight() / FrameType::I.risk_weight()
    }

    /// `P(Fᵢ | aᵢ, S)`: probability the frame misses its deadline.
    pub fn failure_probability(
        &self,
        action: RecoveryAction,
        frame: &FrameState,
        stats: &RecoveryStats,
    ) -> f64 {
        match action {
            RecoveryAction::BestEffortPackets => {
                let p = stats.packet_success_rate().clamp(0.0, 1.0);
                // Feasible retries within the deadline.
                let rtt = stats.best_effort_rtt.as_secs_f64().max(1e-6);
                let retries = (frame.deadline.as_secs_f64() / rtt).floor().max(0.0);
                if retries < 1.0 {
                    return 1.0;
                }
                // Each missing packet independently succeeds within r
                // tries w.p. 1-(1-p)^r; the frame plays iff all succeed.
                let per_packet = 1.0 - (1.0 - p).powf(retries);
                1.0 - per_packet.powf(frame.missing_packets.max(1) as f64)
            }
            RecoveryAction::DedicatedFrame => 1.0 - stats.dedicated_within(frame.deadline),
            RecoveryAction::SwitchSubstream | RecoveryAction::FullStream => {
                // The switch must set up, then the frame arrives like a
                // dedicated retrieval. When the deadline expires before
                // setup even completes, the frame is already lost —
                // certain failure, explicitly, rather than letting the
                // saturated zero budget fall through to whatever the
                // latency EDF happens to report at 0.
                if self.switch_deadline_blown(frame, stats) {
                    return 1.0;
                }
                let remaining = frame.deadline.saturating_sub(stats.switch_setup);
                1.0 - stats.dedicated_within(remaining)
            }
        }
    }

    /// Whether a switch-class recovery (substream switch / full-stream
    /// fallback) cannot possibly save this frame: the playout deadline
    /// is already inside the switch setup time, so the recovery budget
    /// saturates to zero.
    pub fn switch_deadline_blown(&self, frame: &FrameState, stats: &RecoveryStats) -> bool {
        frame.deadline <= stats.switch_setup
    }

    /// `cost(aᵢ)` in normalised bandwidth units for one frame.
    pub fn cost(&self, action: RecoveryAction, frame: &FrameState) -> f64 {
        let frame_kb = frame.size as f64 / 1000.0;
        let missing_kb = (frame.missing_packets as f64 * 1.2).min(frame_kb.max(0.0));
        let price_delta = self.cfg.dedicated_cost_factor - 1.0;
        match action {
            // Only the missing packets travel, at best-effort prices.
            RecoveryAction::BestEffortPackets => missing_kb,
            // The whole frame travels again at dedicated prices, plus a
            // per-request overhead.
            RecoveryAction::DedicatedFrame => {
                self.cfg.request_overhead_kb + frame_kb * self.cfg.dedicated_cost_factor
            }
            // This substream's share of the horizon now travels at
            // dedicated prices; charge the price difference.
            RecoveryAction::SwitchSubstream => {
                self.cfg.switch_request_kb
                    + (self.cfg.switch_horizon_frames / self.cfg.substream_count as f64)
                        * frame_kb
                        * price_delta
            }
            // All substreams redirect.
            RecoveryAction::FullStream => {
                self.cfg.switch_request_kb + self.cfg.switch_horizon_frames * frame_kb * price_delta
            }
        }
    }

    /// Loss of one `(action, frame)` pair.
    pub fn loss(&self, action: RecoveryAction, frame: &FrameState, stats: &RecoveryStats) -> f64 {
        self.cost(action, frame)
            + self.cfg.lambda
                * self.failure_probability(action, frame, stats)
                * self.risk(frame.frame_type)
    }

    /// Decides the action vector `A = (a₁ … a_m)` for a retransmission
    /// list by per-frame argmin, then applies the §5.3 escalation: when
    /// at least `consecutive_loss_threshold` frames of one substream are
    /// in the list, per-frame dedicated recovery is inefficient and the
    /// substream switch is evaluated collectively.
    pub fn decide(&self, frames: &[FrameState], stats: &RecoveryStats) -> Vec<Decision> {
        // Stage-profiled (wall clock, stderr-only reporting).
        let _span = rlive_sim::obs::time_stage(rlive_sim::obs::Stage::RecoveryDecision);
        let mut decisions: Vec<Decision> = frames
            .iter()
            .map(|f| {
                let (action, loss) = RecoveryAction::ALL
                    .iter()
                    .map(|&a| (a, self.loss(a, f, stats)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite losses"))
                    .expect("non-empty action set");
                Decision {
                    dts_ms: f.dts_ms,
                    action,
                    loss,
                    failure_probability: self.failure_probability(action, f, stats),
                }
            })
            .collect();

        // Escalation: count frames per substream in the list. A
        // fixed-size stack array indexed by substream id (substream
        // counts are single-digit; `FULL_STREAM` = u16::MAX lands in
        // the shared overflow slot) replaces the old heap-allocated
        // `HashMap<u16, usize>` — no allocation, and the escalation
        // loop visits substreams in deterministic ascending order.
        const TALLY_SLOTS: usize = 64;
        let mut tally = [0usize; TALLY_SLOTS];
        let mut overflow: Vec<(u16, usize)> = Vec::new();
        for f in frames {
            if (f.substream as usize) < TALLY_SLOTS {
                tally[f.substream as usize] += 1;
            } else if let Some(slot) = overflow.iter_mut().find(|(s, _)| *s == f.substream) {
                slot.1 += 1;
            } else {
                overflow.push((f.substream, 1));
            }
        }
        let tallied = tally
            .iter()
            .enumerate()
            .map(|(ss, &count)| (ss as u16, count))
            .chain(overflow.iter().copied());
        for (ss, count) in tallied {
            if count < self.cfg.consecutive_loss_threshold {
                continue;
            }
            // Amortised switch: one setup redirects all of this
            // substream's listed frames.
            let members: Vec<usize> = frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.substream == ss)
                .map(|(i, _)| i)
                .collect();
            let current_total: f64 = members.iter().map(|&i| decisions[i].loss).sum();
            let switch_total: f64 = members
                .iter()
                .map(|&i| {
                    let f = &frames[i];
                    // Shared setup cost: charge the horizon once, spread
                    // evenly; risk term per frame.
                    let shared_cost =
                        self.cost(RecoveryAction::SwitchSubstream, f) / members.len() as f64;
                    shared_cost
                        + self.cfg.lambda
                            * self.failure_probability(RecoveryAction::SwitchSubstream, f, stats)
                            * self.risk(f.frame_type)
                })
                .sum();
            if switch_total < current_total {
                for &i in &members {
                    let f = &frames[i];
                    decisions[i] = Decision {
                        dts_ms: f.dts_ms,
                        action: RecoveryAction::SwitchSubstream,
                        loss: switch_total / members.len() as f64,
                        failure_probability: self.failure_probability(
                            RecoveryAction::SwitchSubstream,
                            f,
                            stats,
                        ),
                    };
                }
            }
        }
        decisions
    }

    /// [`RecoveryDecider::decide`] plus structured observability: every
    /// chosen action is emitted into `sink` as a
    /// [`TraceEvent::RecoveryDecision`], attributed to `session`.
    /// Decisions are byte-identical to the untraced path.
    pub fn decide_traced(
        &self,
        frames: &[FrameState],
        stats: &RecoveryStats,
        sink: &TraceSink,
        now: SimTime,
        session: u64,
    ) -> Vec<Decision> {
        let decisions = self.decide(frames, stats);
        if sink.is_enabled() {
            for (d, f) in decisions.iter().zip(frames) {
                sink.emit(
                    now,
                    Some(session),
                    TraceEvent::RecoveryDecision {
                        dts_ms: d.dts_ms,
                        action: d.action.label(),
                        loss: d.loss,
                        failure_probability: d.failure_probability,
                    },
                );
                // A switch-class action picked for a frame whose
                // deadline is already inside the switch setup cannot
                // save that frame — surface the blown deadline instead
                // of letting it pass as "escalated with zero budget".
                if matches!(
                    d.action,
                    RecoveryAction::SwitchSubstream | RecoveryAction::FullStream
                ) && self.switch_deadline_blown(f, stats)
                {
                    sink.emit(
                        now,
                        Some(session),
                        TraceEvent::RecoveryDeadlineBlown {
                            dts_ms: d.dts_ms,
                            action: d.action.label(),
                        },
                    );
                }
            }
        }
        decisions
    }
}

/// Which [`RecoveryPolicy`] a world runs. Mirrors
/// `control::policy::SchedulerPolicyKind`: a `Copy` tag that survives
/// config cloning and serde, resolved into a boxed policy at world
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoveryPolicyKind {
    /// The §5.3 QoE-driven EDF loss minimisation — one action per lost
    /// frame, no hedging. Byte-identical to the pre-seam decider.
    #[default]
    QoeEdf,
    /// AutoRec-style racing: hedge best-effort retransmissions across
    /// 2–3 suppliers with cancel-on-first-win, escalating straight to
    /// the CDN when the racing window shrinks below `switch_setup`.
    Racing,
}

impl RecoveryPolicyKind {
    /// Parses a CLI / config label. Accepts `qoe_edf` (and the
    /// dash-spelled `qoe-edf`) and `racing`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "qoe_edf" | "qoe-edf" => Some(RecoveryPolicyKind::QoeEdf),
            "racing" => Some(RecoveryPolicyKind::Racing),
            _ => None,
        }
    }

    /// Stable label for reports and golden output.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryPolicyKind::QoeEdf => "qoe_edf",
            RecoveryPolicyKind::Racing => "racing",
        }
    }
}

/// One planned recovery: the underlying EDF decision plus the number of
/// concurrent best-effort attempts the policy wants in flight. A fanout
/// of 1 is the classic single-attempt path; ≥ 2 means the session layer
/// races that many suppliers and cancels on first win.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedRecovery {
    /// The per-frame action and its loss bookkeeping.
    pub decision: Decision,
    /// Concurrent attempts to issue (only meaningful for
    /// [`RecoveryAction::BestEffortPackets`]; always 1 otherwise).
    pub fanout: u32,
}

impl PlannedRecovery {
    /// Wraps a decision in the no-hedging shape.
    pub fn single(decision: Decision) -> Self {
        PlannedRecovery {
            decision,
            fanout: 1,
        }
    }
}

/// The recovery-policy seam. The session layer hands the policy the
/// current retransmission list and per-session statistics; the policy
/// returns one [`PlannedRecovery`] per frame. Policies are deterministic
/// state machines: no randomness, no wall clock — every output is a
/// pure function of the inputs seen so far, which is what keeps worlds
/// byte-identical across `--jobs` / `--world-jobs`.
pub trait RecoveryPolicy: Send {
    /// Which kind this policy is.
    fn kind(&self) -> RecoveryPolicyKind;

    /// Stable label for reports.
    fn label(&self) -> &'static str {
        self.kind().label()
    }

    /// Plans recovery for a retransmission list. `suppliers` are the
    /// best-effort supplier ids currently serving this session (relay
    /// actor ids), in deterministic order; policies may use their
    /// learned quality to size the hedge fanout.
    fn plan(
        &mut self,
        frames: &[FrameState],
        stats: &RecoveryStats,
        suppliers: &[u64],
        sink: &TraceSink,
        now: SimTime,
        session: u64,
    ) -> Vec<PlannedRecovery>;

    /// Feedback: one best-effort attempt against `supplier` finished.
    /// Default no-op; learning policies fold this into per-supplier
    /// quality windows.
    fn note_attempt_outcome(&mut self, _now: SimTime, _supplier: u64, _success: bool) {}
}

/// The classic §5.3 decider behind the seam: delegates straight to
/// [`RecoveryDecider::decide_traced`] with fanout 1 everywhere, so the
/// decision stream — and therefore every pinned golden — is
/// byte-identical to the pre-seam code.
#[derive(Debug)]
pub struct QoeEdfPolicy {
    decider: RecoveryDecider,
}

impl QoeEdfPolicy {
    /// Builds the policy from the shared recovery config.
    pub fn new(cfg: RecoveryConfig) -> Self {
        QoeEdfPolicy {
            decider: RecoveryDecider::new(cfg),
        }
    }
}

impl RecoveryPolicy for QoeEdfPolicy {
    fn kind(&self) -> RecoveryPolicyKind {
        RecoveryPolicyKind::QoeEdf
    }

    fn plan(
        &mut self,
        frames: &[FrameState],
        stats: &RecoveryStats,
        _suppliers: &[u64],
        sink: &TraceSink,
        now: SimTime,
        session: u64,
    ) -> Vec<PlannedRecovery> {
        self.decider
            .decide_traced(frames, stats, sink, now, session)
            .into_iter()
            .map(PlannedRecovery::single)
            .collect()
    }
}

/// Tumbling-window quality ledger for one best-effort supplier,
/// modelled on the obs layer's recovery-failure windows: attempts and
/// failures accumulate in the current window; on rollover the closed
/// window's failure rate becomes the quoted rate.
#[derive(Debug, Clone, Default)]
struct SupplierWindow {
    /// Current tumbling window index (`now / window_ms`).
    window: u64,
    /// Attempts observed in the current window.
    attempts: u32,
    /// Failures observed in the current window.
    failures: u32,
    /// Failure rate of the last closed window that had samples.
    closed_rate: Option<f64>,
}

impl SupplierWindow {
    fn roll(&mut self, window: u64) {
        if window == self.window {
            return;
        }
        if self.attempts > 0 {
            self.closed_rate = Some(self.failures as f64 / self.attempts as f64);
        }
        self.window = window;
        self.attempts = 0;
        self.failures = 0;
    }

    fn observe(&mut self, window: u64, success: bool) {
        self.roll(window);
        self.attempts += 1;
        if !success {
            self.failures += 1;
        }
    }

    /// Best available failure-rate estimate: the last closed window,
    /// else the current window once it has a few samples.
    fn failure_rate(&self) -> Option<f64> {
        if let Some(r) = self.closed_rate {
            return Some(r);
        }
        if self.attempts >= 4 {
            return Some(self.failures as f64 / self.attempts as f64);
        }
        None
    }
}

/// AutoRec-style racing recovery. The EDF decider still ranks actions,
/// but instead of committing a lost frame to a single best-effort
/// supplier the policy hedges the retransmission across several and the
/// session layer cancels on first win. Two deterministic adjustments on
/// top of the baseline decisions:
///
/// 1. **Deadline-aware CDN escalation** — a best-effort pick whose
///    racing window has already shrunk below `switch_setup` cannot
///    afford even one losing race leg, so it escalates straight to a
///    dedicated CDN fetch.
/// 2. **Quality-sized fanout** — base fanout 2, widened to 3 while any
///    serving supplier's tumbling-window failure rate is at or above
///    the configured threshold.
#[derive(Debug)]
pub struct RacingPolicy {
    decider: RecoveryDecider,
    /// Per-supplier quality windows, keyed by supplier id (BTreeMap for
    /// deterministic iteration).
    windows: std::collections::BTreeMap<u64, SupplierWindow>,
    /// Tumbling window width in milliseconds.
    window_ms: u64,
    /// Fanout while suppliers look healthy.
    base_fanout: u32,
    /// Fanout while some supplier's windowed failure rate is high.
    max_fanout: u32,
    /// Windowed failure rate at which the fanout widens.
    bad_supplier_threshold: f64,
}

impl RacingPolicy {
    /// Builds the policy from the shared recovery config.
    pub fn new(cfg: RecoveryConfig) -> Self {
        RacingPolicy {
            decider: RecoveryDecider::new(cfg),
            windows: std::collections::BTreeMap::new(),
            window_ms: 1_000,
            base_fanout: 2,
            max_fanout: 3,
            bad_supplier_threshold: 0.3,
        }
    }

    fn window_of(&self, at: SimTime) -> u64 {
        at.as_millis() / self.window_ms.max(1)
    }

    /// Hedge width for the given serving suppliers: capped by how many
    /// suppliers there actually are, widened while any of them is
    /// failing its window.
    fn fanout_for(&self, suppliers: &[u64]) -> u32 {
        let any_bad = suppliers.iter().any(|s| {
            self.windows
                .get(s)
                .and_then(SupplierWindow::failure_rate)
                .is_some_and(|r| r >= self.bad_supplier_threshold)
        });
        let want = if any_bad {
            self.max_fanout
        } else {
            self.base_fanout
        };
        want.min(suppliers.len().max(1) as u32)
    }
}

impl RecoveryPolicy for RacingPolicy {
    fn kind(&self) -> RecoveryPolicyKind {
        RecoveryPolicyKind::Racing
    }

    fn plan(
        &mut self,
        frames: &[FrameState],
        stats: &RecoveryStats,
        suppliers: &[u64],
        sink: &TraceSink,
        now: SimTime,
        session: u64,
    ) -> Vec<PlannedRecovery> {
        // Decide untraced, escalate, then trace the *final* actions:
        // the decision stream must reflect what the racing policy
        // actually issues, and escalation guarantees it never issues a
        // switch whose deadline is already blown — so the racing arm
        // emits no `RecoveryDeadlineBlown` events of its own.
        let decisions = self.decider.decide(frames, stats);
        let fanout = self.fanout_for(suppliers);
        let plans: Vec<PlannedRecovery> = decisions
            .into_iter()
            .zip(frames)
            .map(|(mut d, f)| {
                // Deadline-aware escalation: once the remaining window
                // is inside the switch setup, neither a race leg nor a
                // substream switch can make the deadline — go straight
                // to the CDN for the frame itself.
                let doomed_switch = matches!(
                    d.action,
                    RecoveryAction::SwitchSubstream | RecoveryAction::FullStream
                ) && self.decider.switch_deadline_blown(f, stats);
                let blown_race_window = d.action == RecoveryAction::BestEffortPackets
                    && f.deadline <= stats.switch_setup;
                if doomed_switch || blown_race_window {
                    d.action = RecoveryAction::DedicatedFrame;
                    d.loss = self.decider.loss(d.action, f, stats);
                    d.failure_probability = self.decider.failure_probability(d.action, f, stats);
                    return PlannedRecovery::single(d);
                }
                if d.action != RecoveryAction::BestEffortPackets {
                    return PlannedRecovery::single(d);
                }
                PlannedRecovery {
                    decision: d,
                    fanout,
                }
            })
            .collect();
        if sink.is_enabled() {
            for p in &plans {
                sink.emit(
                    now,
                    Some(session),
                    TraceEvent::RecoveryDecision {
                        dts_ms: p.decision.dts_ms,
                        action: p.decision.action.label(),
                        loss: p.decision.loss,
                        failure_probability: p.decision.failure_probability,
                    },
                );
            }
        }
        plans
    }

    fn note_attempt_outcome(&mut self, now: SimTime, supplier: u64, success: bool) {
        let window = self.window_of(now);
        self.windows
            .entry(supplier)
            .or_default()
            .observe(window, success);
    }
}

/// Resolves a [`RecoveryPolicyKind`] into a boxed policy.
pub fn build_recovery_policy(
    kind: RecoveryPolicyKind,
    cfg: &RecoveryConfig,
) -> Box<dyn RecoveryPolicy> {
    match kind {
        RecoveryPolicyKind::QoeEdf => Box::new(QoeEdfPolicy::new(cfg.clone())),
        RecoveryPolicyKind::Racing => Box::new(RacingPolicy::new(cfg.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(deadline_ms: u64, missing: u32, ftype: FrameType) -> FrameState {
        FrameState {
            dts_ms: 1000,
            deadline: SimDuration::from_millis(deadline_ms),
            size: 12_000,
            missing_packets: missing,
            frame_type: ftype,
            substream: 0,
        }
    }

    fn decider() -> RecoveryDecider {
        RecoveryDecider::new(RecoveryConfig::default())
    }

    #[test]
    fn ample_deadline_prefers_cheap_best_effort() {
        // Plenty of buffer: best-effort packet recovery is near-free and
        // almost certain within many retries.
        let d = decider();
        let stats = RecoveryStats::default();
        let f = frame(3_000, 2, FrameType::P);
        let decisions = d.decide(&[f], &stats);
        assert_eq!(decisions[0].action, RecoveryAction::BestEffortPackets);
        assert!(decisions[0].failure_probability < 0.05);
    }

    #[test]
    fn tight_deadline_escalates_to_dedicated() {
        // Almost no buffer left: one best-effort retry cycle won't fit,
        // but the dedicated node delivers most frames in ~71 ms.
        let d = decider();
        let stats = RecoveryStats::default();
        let f = frame(90, 2, FrameType::P);
        let decisions = d.decide(&[f], &stats);
        assert_eq!(decisions[0].action, RecoveryAction::DedicatedFrame);
    }

    #[test]
    fn i_frames_escalate_sooner_than_b_frames() {
        // At a deadline where best-effort is plausible but not certain,
        // the higher I-frame risk should flip the decision earlier.
        let d = decider();
        let mut stats = RecoveryStats::default();
        // Make best-effort mediocre: ~70% per-packet success. Interleave
        // the outcomes so the windowed estimate sees the same mix.
        for i in 0..1000 {
            stats.observe_retx(i % 10 < 7);
        }
        let mut flip_b = None;
        let mut flip_i = None;
        for deadline in (40..3000).step_by(20) {
            let b = d.decide(&[frame(deadline, 4, FrameType::B)], &stats)[0].action;
            let i = d.decide(&[frame(deadline, 4, FrameType::I)], &stats)[0].action;
            if b == RecoveryAction::BestEffortPackets && flip_b.is_none() {
                flip_b = Some(deadline);
            }
            if i == RecoveryAction::BestEffortPackets && flip_i.is_none() {
                flip_i = Some(deadline);
            }
        }
        let flip_b = flip_b.expect("B flips to best-effort");
        let flip_i = flip_i.unwrap_or(3000);
        assert!(
            flip_i >= flip_b,
            "I-frame keeps dedicated longer: B flips at {flip_b}, I at {flip_i}"
        );
    }

    #[test]
    fn burst_loss_on_one_substream_switches_it() {
        let d = decider();
        let stats = RecoveryStats::default();
        // Five consecutive frames of substream 2 missing with moderate
        // deadlines: per-frame dedicated recovery is inefficient.
        let frames: Vec<FrameState> = (0..5)
            .map(|i| {
                let mut f = frame(150 + i * 33, 8, FrameType::P);
                f.dts_ms = 1000 + i * 33;
                f.substream = 2;
                f
            })
            .collect();
        let decisions = d.decide(&frames, &stats);
        assert!(
            decisions
                .iter()
                .all(|dec| dec.action == RecoveryAction::SwitchSubstream),
            "{decisions:?}"
        );
    }

    #[test]
    fn scattered_losses_do_not_switch() {
        let d = decider();
        let stats = RecoveryStats::default();
        // One lost frame per substream: no consolidation possible.
        let frames: Vec<FrameState> = (0..4)
            .map(|i| {
                let mut f = frame(1_600, 1, FrameType::P);
                f.substream = i;
                f.dts_ms = 1000 + i as u64 * 33;
                f
            })
            .collect();
        let decisions = d.decide(&frames, &stats);
        assert!(decisions
            .iter()
            .all(|dec| dec.action == RecoveryAction::BestEffortPackets));
    }

    #[test]
    fn failure_probability_monotone_in_deadline() {
        let d = decider();
        let stats = RecoveryStats::default();
        let mut last = 1.1;
        for deadline in [30u64, 60, 120, 240, 480, 960] {
            let f = frame(deadline, 3, FrameType::P);
            let p = d.failure_probability(RecoveryAction::BestEffortPackets, &f, &stats);
            assert!(
                p <= last + 1e-12,
                "p not monotone at {deadline}: {p} > {last}"
            );
            last = p;
        }
    }

    #[test]
    fn failure_probability_increases_with_missing_packets() {
        let d = decider();
        let mut stats = RecoveryStats::default();
        for _ in 0..80 {
            stats.observe_retx(true);
        }
        for _ in 0..20 {
            stats.observe_retx(false);
        }
        let p1 = d.failure_probability(
            RecoveryAction::BestEffortPackets,
            &frame(1_000, 1, FrameType::P),
            &stats,
        );
        let p8 = d.failure_probability(
            RecoveryAction::BestEffortPackets,
            &frame(1_000, 8, FrameType::P),
            &stats,
        );
        assert!(p8 > p1, "p8 {p8} vs p1 {p1}");
    }

    #[test]
    fn dedicated_probability_follows_edf() {
        let d = decider();
        let stats = RecoveryStats::default();
        // At the median latency, failure probability is ~0.5.
        let p = d.failure_probability(
            RecoveryAction::DedicatedFrame,
            &frame(71, 1, FrameType::P),
            &stats,
        );
        assert!((p - 0.5).abs() < 0.05, "p {p}");
        // Far beyond the tail: certain success.
        let p = d.failure_probability(
            RecoveryAction::DedicatedFrame,
            &frame(5_000, 1, FrameType::P),
            &stats,
        );
        assert!(p < 0.01);
    }

    #[test]
    fn cost_ordering_matches_paper() {
        // Packet < frame < substream switch < full stream, for one frame.
        let d = decider();
        let f = frame(100, 1, FrameType::P);
        let c0 = d.cost(RecoveryAction::BestEffortPackets, &f);
        let c1 = d.cost(RecoveryAction::DedicatedFrame, &f);
        let c2 = d.cost(RecoveryAction::SwitchSubstream, &f);
        let c3 = d.cost(RecoveryAction::FullStream, &f);
        assert!(c0 < c1 && c1 < c2 && c2 < c3, "{c0} {c1} {c2} {c3}");
    }

    #[test]
    fn success_rate_prior_decays_with_observations() {
        let mut stats = RecoveryStats::default();
        let prior = stats.packet_success_rate();
        assert!((prior - 0.91).abs() < 0.01);
        for _ in 0..1000 {
            stats.observe_retx(false);
        }
        assert!(stats.packet_success_rate() < 0.05);
    }

    #[test]
    fn blown_switch_deadline_is_certain_failure_at_the_boundary() {
        let d = decider();
        // An EDF that claims probability mass at zero latency: without
        // the explicit blown-deadline branch, a saturated zero budget
        // would read `1 - cdf(0) = 0.5` — "escalate with zero budget" —
        // instead of certain failure.
        let stats = RecoveryStats {
            dedicated_latency: EmpiricalCdf::from_points(&[(0.0, 0.5), (100.0, 1.0)]),
            ..RecoveryStats::default()
        };
        for action in [RecoveryAction::SwitchSubstream, RecoveryAction::FullStream] {
            // deadline < setup: blown.
            let f = frame(10, 2, FrameType::P);
            assert!(d.switch_deadline_blown(&f, &stats));
            assert_eq!(d.failure_probability(action, &f, &stats), 1.0);
            // deadline == setup (30 ms): still blown — zero budget.
            let f = frame(30, 2, FrameType::P);
            assert!(d.switch_deadline_blown(&f, &stats));
            assert_eq!(d.failure_probability(action, &f, &stats), 1.0);
            // One millisecond of budget: back on the EDF.
            let f = frame(31, 2, FrameType::P);
            assert!(!d.switch_deadline_blown(&f, &stats));
            let p = d.failure_probability(action, &f, &stats);
            assert!(p < 1.0, "1 ms budget must consult the EDF, got {p}");
        }
        // The dedicated-frame path is untouched by the switch branch.
        let f = frame(10, 2, FrameType::P);
        let p = d.failure_probability(RecoveryAction::DedicatedFrame, &f, &stats);
        assert!((p - 0.45).abs() < 1e-9, "p {p}");
    }

    #[test]
    fn blown_deadline_switch_emits_trace_event() {
        let d = decider();
        let stats = RecoveryStats::default();
        // A burst on substream 2 where the earliest frame's deadline is
        // already inside the 30 ms switch setup: the collective switch
        // can still win on the later frames, but the doomed frame must
        // be called out.
        let mut frames: Vec<FrameState> = (0..5)
            .map(|i| {
                let mut f = frame(150 + i * 33, 8, FrameType::P);
                f.dts_ms = 1000 + i * 33;
                f.substream = 2;
                f
            })
            .collect();
        frames[0].deadline = SimDuration::from_millis(20);
        let sink = TraceSink::unbounded();
        let decisions = d.decide_traced(&frames, &stats, &sink, SimTime::from_secs(1), 42);
        assert!(
            decisions
                .iter()
                .all(|dec| dec.action == RecoveryAction::SwitchSubstream),
            "{decisions:?}"
        );
        let records = sink.snapshot();
        let blown: Vec<_> = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RecoveryDeadlineBlown { .. }))
            .collect();
        assert_eq!(blown.len(), 1, "exactly the doomed frame: {records:?}");
        match &blown[0].event {
            TraceEvent::RecoveryDeadlineBlown { dts_ms, action } => {
                assert_eq!(*dts_ms, 1000);
                assert_eq!(*action, "switch_substream");
            }
            other => panic!("unexpected event {other:?}"),
        }
        // The traced path stays byte-identical to the untraced one.
        assert_eq!(decisions, d.decide(&frames, &stats));
    }

    #[test]
    fn zero_deadline_fails_everything_but_still_decides() {
        let d = decider();
        let stats = RecoveryStats::default();
        let f = frame(0, 2, FrameType::P);
        let decisions = d.decide(std::slice::from_ref(&f), &stats);
        assert_eq!(decisions.len(), 1);
        assert!(d.failure_probability(RecoveryAction::BestEffortPackets, &f, &stats) >= 1.0 - 1e-9);
    }

    #[test]
    fn success_rate_tracks_a_regime_change() {
        // A supplier that was healthy for a long prefix then degrades:
        // the all-history estimate would stay optimistic forever
        // ((1000 + 18.2) / (1512 + 20) ≈ 0.66 after the crash below),
        // while the windowed estimate must converge to the new regime.
        let mut stats = RecoveryStats::default();
        for _ in 0..1000 {
            stats.observe_retx(true);
        }
        assert!(stats.packet_success_rate() > 0.9);
        for _ in 0..RETX_WINDOW {
            stats.observe_retx(false);
        }
        assert!(
            stats.packet_success_rate() < 0.05,
            "windowed rate must track the recent window, got {}",
            stats.packet_success_rate()
        );
        // And recover just as fast when the supplier heals.
        for _ in 0..RETX_WINDOW {
            stats.observe_retx(true);
        }
        assert!(stats.packet_success_rate() > 0.9);
        // All-history counters still accumulate for reporting.
        assert_eq!(stats.retx_attempts, 1000 + 2 * RETX_WINDOW as u64);
        assert_eq!(stats.retx_succeeded, 1000 + RETX_WINDOW as u64);
    }

    #[test]
    fn windowed_rate_matches_all_history_until_the_window_fills() {
        // Golden-compatibility: below RETX_WINDOW attempts the windowed
        // estimate must equal the historical all-history formula.
        let mut stats = RecoveryStats::default();
        for i in 0..RETX_WINDOW as u64 {
            stats.observe_retx(i % 3 != 0);
            let all_history =
                (stats.retx_succeeded as f64 + 0.91 * 20.0) / (stats.retx_attempts as f64 + 20.0);
            assert!(
                (stats.packet_success_rate() - all_history).abs() < 1e-12,
                "diverged at attempt {}",
                i + 1
            );
        }
    }

    #[test]
    fn empirical_cdf_boundaries_are_pinned() {
        // The boundary contract the recovery model leans on: mass below
        // the first point is zero, the first point carries its own
        // probability, and anything at or past the last point saturates
        // to one.
        let stats = RecoveryStats::default();
        let cdf = &stats.dedicated_latency;
        assert_eq!(cdf.cdf(0.0), 0.0, "deadline 0 is before the 20 ms floor");
        assert_eq!(cdf.cdf(19.999), 0.0);
        assert_eq!(cdf.cdf(20.0), 0.0, "first point carries its probability");
        assert_eq!(cdf.cdf(3000.0), 1.0, "last point saturates");
        assert_eq!(cdf.cdf(1.0e9), 1.0, "beyond the last point stays 1");
        // dedicated_within is the same clamping through SimDuration.
        assert_eq!(stats.dedicated_within(SimDuration::ZERO), 0.0);
        assert_eq!(stats.dedicated_within(SimDuration::from_secs(3600)), 1.0);
        // So a zero deadline makes dedicated recovery certain failure,
        // and a huge deadline makes it certain success.
        let d = decider();
        let p0 = d.failure_probability(
            RecoveryAction::DedicatedFrame,
            &frame(0, 1, FrameType::P),
            &stats,
        );
        assert_eq!(p0, 1.0);
        let p_inf = d.failure_probability(
            RecoveryAction::DedicatedFrame,
            &frame(3_600_000, 1, FrameType::P),
            &stats,
        );
        assert_eq!(p_inf, 0.0);
        // Switch-class at deadline == 0 and == switch_setup: blown on
        // both (zero racing budget), not blown one past setup.
        assert!(d.switch_deadline_blown(&frame(0, 1, FrameType::P), &stats));
        assert!(d.switch_deadline_blown(&frame(30, 1, FrameType::P), &stats));
        assert!(!d.switch_deadline_blown(&frame(31, 1, FrameType::P), &stats));
    }

    #[test]
    fn policy_kind_parses_and_labels() {
        assert_eq!(
            RecoveryPolicyKind::parse("qoe_edf"),
            Some(RecoveryPolicyKind::QoeEdf)
        );
        assert_eq!(
            RecoveryPolicyKind::parse("qoe-edf"),
            Some(RecoveryPolicyKind::QoeEdf)
        );
        assert_eq!(
            RecoveryPolicyKind::parse("racing"),
            Some(RecoveryPolicyKind::Racing)
        );
        assert_eq!(RecoveryPolicyKind::parse("bogus"), None);
        assert_eq!(RecoveryPolicyKind::default().label(), "qoe_edf");
        assert_eq!(RecoveryPolicyKind::Racing.label(), "racing");
        assert_eq!(
            build_recovery_policy(RecoveryPolicyKind::Racing, &RecoveryConfig::default()).label(),
            "racing"
        );
    }

    #[test]
    fn qoe_edf_policy_is_byte_identical_to_the_decider() {
        let cfg = RecoveryConfig::default();
        let d = RecoveryDecider::new(cfg.clone());
        let mut policy = QoeEdfPolicy::new(cfg);
        let stats = RecoveryStats::default();
        let frames = vec![
            frame(3_000, 2, FrameType::P),
            frame(90, 2, FrameType::I),
            frame(40, 6, FrameType::B),
        ];
        let sink = TraceSink::disabled();
        let plans = policy.plan(&frames, &stats, &[1, 2], &sink, SimTime::from_secs(1), 7);
        let decisions = d.decide(&frames, &stats);
        assert_eq!(plans.len(), decisions.len());
        for (p, d) in plans.iter().zip(&decisions) {
            assert_eq!(p.fanout, 1, "QoeEdf never hedges");
            assert_eq!(&p.decision, d);
        }
    }

    #[test]
    fn racing_policy_hedges_best_effort_and_escalates_blown_windows() {
        let mut policy = RacingPolicy::new(RecoveryConfig::default());
        let stats = RecoveryStats::default();
        let sink = TraceSink::disabled();
        let suppliers = [10u64, 11, 12];
        let frames = vec![
            // Ample deadline: best-effort pick, hedged.
            frame(3_000, 2, FrameType::P),
            // Racing window inside switch_setup (30 ms): best-effort
            // would win the argmin on price at very short deadlines
            // only via the blown branch — force the boundary.
            frame(25, 1, FrameType::P),
        ];
        let plans = policy.plan(&frames, &stats, &suppliers, &sink, SimTime::from_secs(1), 7);
        assert_eq!(plans[0].decision.action, RecoveryAction::BestEffortPackets);
        assert_eq!(plans[0].fanout, 2, "healthy suppliers race at base fanout");
        // The 25 ms frame must not stay best-effort with a hedge: either
        // the decider already escalated it, or the racing override did.
        assert_ne!(plans[1].decision.action, RecoveryAction::BestEffortPackets);
        assert_eq!(plans[1].fanout, 1);

        // Degrade one supplier's window: fanout widens to 3.
        for i in 0..10 {
            policy.note_attempt_outcome(SimTime::from_millis(100 * i), 11, false);
        }
        let plans = policy.plan(
            &frames[..1],
            &stats,
            &suppliers,
            &sink,
            SimTime::from_secs(2),
            7,
        );
        assert_eq!(plans[0].fanout, 3, "bad supplier widens the hedge");

        // Fanout is capped by the number of suppliers actually serving.
        let plans = policy.plan(
            &frames[..1],
            &stats,
            &suppliers[..1],
            &sink,
            SimTime::from_secs(3),
            7,
        );
        assert_eq!(plans[0].fanout, 1);
    }
}
