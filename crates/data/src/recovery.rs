//! QoE-driven sub-stream loss recovery (§5.3).
//!
//! When data is lost, the client chooses per incomplete frame among four
//! actions: (0) packet retransmission from the best-effort node, (1)
//! whole-frame recovery from a dedicated node, (2) switching the
//! affected substream back to a dedicated node, and (3) pulling the full
//! stream from dedicated nodes. The decision minimises
//!
//! ```text
//! Loss(A) = cost(A) + λ Σᵢ P(Fᵢ | aᵢ, S) · risk(Fᵢ)
//! ```
//!
//! where `P` is the probability that frame `i` misses its playout
//! deadline under action `aᵢ`: for dedicated nodes it comes from an
//! empirical distribution function of historical frame-retrieval times
//! `L`; for best-effort nodes from a per-packet geometric model using
//! the observed retransmission success rate `p`, the missing packet
//! count and the retries feasible before the deadline.

use rlive_media::frame::FrameType;
use rlive_sim::rng::EmpiricalCdf;
use rlive_sim::trace::{TraceEvent, TraceSink};
use rlive_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The four recovery actions of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// `a = 0`: packet retransmission from the best-effort publisher
    /// (fast retransmit on out-of-order, else timeout retransmit).
    BestEffortPackets,
    /// `a = 1`: retrieve the whole frame from a dedicated node.
    DedicatedFrame,
    /// `a = 2`: switch this substream's publisher to a dedicated node.
    SwitchSubstream,
    /// `a = 3`: pull the entire stream from dedicated nodes.
    FullStream,
}

impl RecoveryAction {
    /// All actions in index order.
    pub const ALL: [RecoveryAction; 4] = [
        RecoveryAction::BestEffortPackets,
        RecoveryAction::DedicatedFrame,
        RecoveryAction::SwitchSubstream,
        RecoveryAction::FullStream,
    ];

    /// Short label for trace records and timelines.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryAction::BestEffortPackets => "best_effort_packets",
            RecoveryAction::DedicatedFrame => "dedicated_frame",
            RecoveryAction::SwitchSubstream => "switch_substream",
            RecoveryAction::FullStream => "full_stream",
        }
    }
}

/// Recovery state of one incomplete frame — the per-frame slice of the
/// paper's state `S = (τ, s, X_succ, X_fail, L)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameState {
    /// dts of the frame.
    pub dts_ms: u64,
    /// τᵢ: time remaining until the frame's playout deadline.
    pub deadline: SimDuration,
    /// sᵢ: frame size in bytes.
    pub size: u32,
    /// Missing packet count (x_fail).
    pub missing_packets: u32,
    /// Frame type (drives `risk(Fᵢ)`).
    pub frame_type: FrameType,
    /// Substream the frame belongs to.
    pub substream: u16,
}

/// Shared recovery statistics: the `X_succ`, `X_fail` and `L` components
/// of the state, accumulated over the session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Successfully retransmitted packets (x_succ).
    pub retx_succeeded: u64,
    /// Total best-effort retransmission attempts (n_succ).
    pub retx_attempts: u64,
    /// Round-trip to the best-effort publisher (one retry cycle).
    pub best_effort_rtt: SimDuration,
    /// Historical dedicated-node frame retrieval times `L`, as an EDF.
    pub dedicated_latency: EmpiricalCdf,
    /// Extra latency of establishing a substream switch.
    pub switch_setup: SimDuration,
}

impl Default for RecoveryStats {
    fn default() -> Self {
        RecoveryStats {
            retx_succeeded: 0,
            retx_attempts: 0,
            // One best-effort retry cycle is slow (Fig 3(b): best-effort
            // recovery takes a median 778 ms end to end), so the model
            // prices a cycle at that median.
            best_effort_rtt: SimDuration::from_millis(800),
            // Fig 3(b): dedicated retransmission median ≈ 71 ms.
            dedicated_latency: EmpiricalCdf::from_points(&[
                (20.0, 0.0),
                (50.0, 0.25),
                (71.1, 0.50),
                (120.0, 0.75),
                (300.0, 0.93),
                (1000.0, 0.99),
                (3000.0, 1.0),
            ]),
            // DNS bypass (§8.1) keeps switch setup short.
            switch_setup: SimDuration::from_millis(30),
        }
    }
}

impl RecoveryStats {
    /// Per-packet best-effort retransmission success rate `p`, with a
    /// weak prior until observations accumulate.
    pub fn packet_success_rate(&self) -> f64 {
        // Prior: Fig 3(a) best-effort success ≈ 0.91.
        let prior_n = 20.0;
        let prior_p = 0.91;
        (self.retx_succeeded as f64 + prior_p * prior_n) / (self.retx_attempts as f64 + prior_n)
    }

    /// Records one best-effort retransmission outcome.
    pub fn observe_retx(&mut self, success: bool) {
        self.retx_attempts += 1;
        if success {
            self.retx_succeeded += 1;
        }
    }

    /// `F_N(τ)`: probability a dedicated-node frame retrieval completes
    /// within `τ`.
    pub fn dedicated_within(&self, deadline: SimDuration) -> f64 {
        self.dedicated_latency.cdf(deadline.as_millis_f64())
    }
}

/// Cost/λ configuration of the loss function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// λ: weight of the unplayability term relative to bandwidth cost.
    pub lambda: f64,
    /// Relative per-byte cost of dedicated-CDN bandwidth (best-effort
    /// bandwidth is the unit; §2.1 prices best-effort 20–40 % cheaper).
    pub dedicated_cost_factor: f64,
    /// Per-request overhead (in KB-equivalents) of a dedicated-node
    /// frame retrieval — the processing/connection burden that makes
    /// "repeatedly requesting individual frames" inefficient (§5.3).
    pub request_overhead_kb: f64,
    /// Per-switch overhead (in KB-equivalents) of re-homing a substream.
    pub switch_request_kb: f64,
    /// Whole-stream frames priced in when traffic redirects to the CDN —
    /// a substream switch redirects `horizon / K` of them, full-stream
    /// fallback all of them; only the dedicated-vs-best-effort price
    /// *difference* is charged, since the data must flow either way.
    pub switch_horizon_frames: f64,
    /// Number of substreams K.
    pub substream_count: u16,
    /// risk(F) for I-frames (P/B scale down from it via
    /// [`FrameType::risk_weight`]).
    pub i_frame_risk: f64,
    /// Lost frames of one substream in a single retransmission list that
    /// make switching that substream worth considering (§5.3 action 2).
    pub consecutive_loss_threshold: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            lambda: 50.0,
            dedicated_cost_factor: 1.35,
            request_overhead_kb: 8.0,
            switch_request_kb: 4.0,
            switch_horizon_frames: 60.0,
            substream_count: 4,
            i_frame_risk: 8.0,
            consecutive_loss_threshold: 3,
        }
    }
}

/// One decided action for one frame, with its evaluated loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// dts of the frame.
    pub dts_ms: u64,
    /// Chosen action.
    pub action: RecoveryAction,
    /// Loss of the chosen action.
    pub loss: f64,
    /// Modelled failure probability under the chosen action.
    pub failure_probability: f64,
}

/// The QoE-driven recovery decision engine.
///
/// # Examples
///
/// ```
/// use rlive_data::recovery::{FrameState, RecoveryAction, RecoveryConfig,
///                            RecoveryDecider, RecoveryStats};
/// use rlive_media::frame::FrameType;
/// use rlive_sim::SimDuration;
///
/// let decider = RecoveryDecider::new(RecoveryConfig::default());
/// let stats = RecoveryStats::default();
/// // Plenty of buffer left: the cheap best-effort path wins.
/// let relaxed = FrameState {
///     dts_ms: 1_000,
///     deadline: SimDuration::from_millis(3_000),
///     size: 12_000,
///     missing_packets: 2,
///     frame_type: FrameType::P,
///     substream: 0,
/// };
/// let d = &decider.decide(std::slice::from_ref(&relaxed), &stats)[0];
/// assert_eq!(d.action, RecoveryAction::BestEffortPackets);
/// // Buffer nearly empty: escalate to the dedicated CDN.
/// let urgent = FrameState { deadline: SimDuration::from_millis(90), ..relaxed };
/// let d = &decider.decide(std::slice::from_ref(&urgent), &stats)[0];
/// assert_eq!(d.action, RecoveryAction::DedicatedFrame);
/// ```
#[derive(Debug, Clone)]
pub struct RecoveryDecider {
    cfg: RecoveryConfig,
}

impl RecoveryDecider {
    /// Creates a decider.
    pub fn new(cfg: RecoveryConfig) -> Self {
        RecoveryDecider { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &RecoveryConfig {
        &self.cfg
    }

    /// `risk(Fᵢ)`: unplayability impact, by frame type (I-frames decode
    /// the whole GoP, §5.3).
    pub fn risk(&self, frame_type: FrameType) -> f64 {
        self.cfg.i_frame_risk * frame_type.risk_weight() / FrameType::I.risk_weight()
    }

    /// `P(Fᵢ | aᵢ, S)`: probability the frame misses its deadline.
    pub fn failure_probability(
        &self,
        action: RecoveryAction,
        frame: &FrameState,
        stats: &RecoveryStats,
    ) -> f64 {
        match action {
            RecoveryAction::BestEffortPackets => {
                let p = stats.packet_success_rate().clamp(0.0, 1.0);
                // Feasible retries within the deadline.
                let rtt = stats.best_effort_rtt.as_secs_f64().max(1e-6);
                let retries = (frame.deadline.as_secs_f64() / rtt).floor().max(0.0);
                if retries < 1.0 {
                    return 1.0;
                }
                // Each missing packet independently succeeds within r
                // tries w.p. 1-(1-p)^r; the frame plays iff all succeed.
                let per_packet = 1.0 - (1.0 - p).powf(retries);
                1.0 - per_packet.powf(frame.missing_packets.max(1) as f64)
            }
            RecoveryAction::DedicatedFrame => 1.0 - stats.dedicated_within(frame.deadline),
            RecoveryAction::SwitchSubstream | RecoveryAction::FullStream => {
                // The switch must set up, then the frame arrives like a
                // dedicated retrieval. When the deadline expires before
                // setup even completes, the frame is already lost —
                // certain failure, explicitly, rather than letting the
                // saturated zero budget fall through to whatever the
                // latency EDF happens to report at 0.
                if self.switch_deadline_blown(frame, stats) {
                    return 1.0;
                }
                let remaining = frame.deadline.saturating_sub(stats.switch_setup);
                1.0 - stats.dedicated_within(remaining)
            }
        }
    }

    /// Whether a switch-class recovery (substream switch / full-stream
    /// fallback) cannot possibly save this frame: the playout deadline
    /// is already inside the switch setup time, so the recovery budget
    /// saturates to zero.
    pub fn switch_deadline_blown(&self, frame: &FrameState, stats: &RecoveryStats) -> bool {
        frame.deadline <= stats.switch_setup
    }

    /// `cost(aᵢ)` in normalised bandwidth units for one frame.
    pub fn cost(&self, action: RecoveryAction, frame: &FrameState) -> f64 {
        let frame_kb = frame.size as f64 / 1000.0;
        let missing_kb = (frame.missing_packets as f64 * 1.2).min(frame_kb.max(0.0));
        let price_delta = self.cfg.dedicated_cost_factor - 1.0;
        match action {
            // Only the missing packets travel, at best-effort prices.
            RecoveryAction::BestEffortPackets => missing_kb,
            // The whole frame travels again at dedicated prices, plus a
            // per-request overhead.
            RecoveryAction::DedicatedFrame => {
                self.cfg.request_overhead_kb + frame_kb * self.cfg.dedicated_cost_factor
            }
            // This substream's share of the horizon now travels at
            // dedicated prices; charge the price difference.
            RecoveryAction::SwitchSubstream => {
                self.cfg.switch_request_kb
                    + (self.cfg.switch_horizon_frames / self.cfg.substream_count as f64)
                        * frame_kb
                        * price_delta
            }
            // All substreams redirect.
            RecoveryAction::FullStream => {
                self.cfg.switch_request_kb + self.cfg.switch_horizon_frames * frame_kb * price_delta
            }
        }
    }

    /// Loss of one `(action, frame)` pair.
    pub fn loss(&self, action: RecoveryAction, frame: &FrameState, stats: &RecoveryStats) -> f64 {
        self.cost(action, frame)
            + self.cfg.lambda
                * self.failure_probability(action, frame, stats)
                * self.risk(frame.frame_type)
    }

    /// Decides the action vector `A = (a₁ … a_m)` for a retransmission
    /// list by per-frame argmin, then applies the §5.3 escalation: when
    /// at least `consecutive_loss_threshold` frames of one substream are
    /// in the list, per-frame dedicated recovery is inefficient and the
    /// substream switch is evaluated collectively.
    pub fn decide(&self, frames: &[FrameState], stats: &RecoveryStats) -> Vec<Decision> {
        // Stage-profiled (wall clock, stderr-only reporting).
        let _span = rlive_sim::obs::time_stage(rlive_sim::obs::Stage::RecoveryDecision);
        let mut decisions: Vec<Decision> = frames
            .iter()
            .map(|f| {
                let (action, loss) = RecoveryAction::ALL
                    .iter()
                    .map(|&a| (a, self.loss(a, f, stats)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite losses"))
                    .expect("non-empty action set");
                Decision {
                    dts_ms: f.dts_ms,
                    action,
                    loss,
                    failure_probability: self.failure_probability(action, f, stats),
                }
            })
            .collect();

        // Escalation: count frames per substream in the list. A
        // fixed-size stack array indexed by substream id (substream
        // counts are single-digit; `FULL_STREAM` = u16::MAX lands in
        // the shared overflow slot) replaces the old heap-allocated
        // `HashMap<u16, usize>` — no allocation, and the escalation
        // loop visits substreams in deterministic ascending order.
        const TALLY_SLOTS: usize = 64;
        let mut tally = [0usize; TALLY_SLOTS];
        let mut overflow: Vec<(u16, usize)> = Vec::new();
        for f in frames {
            if (f.substream as usize) < TALLY_SLOTS {
                tally[f.substream as usize] += 1;
            } else if let Some(slot) = overflow.iter_mut().find(|(s, _)| *s == f.substream) {
                slot.1 += 1;
            } else {
                overflow.push((f.substream, 1));
            }
        }
        let tallied = tally
            .iter()
            .enumerate()
            .map(|(ss, &count)| (ss as u16, count))
            .chain(overflow.iter().copied());
        for (ss, count) in tallied {
            if count < self.cfg.consecutive_loss_threshold {
                continue;
            }
            // Amortised switch: one setup redirects all of this
            // substream's listed frames.
            let members: Vec<usize> = frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.substream == ss)
                .map(|(i, _)| i)
                .collect();
            let current_total: f64 = members.iter().map(|&i| decisions[i].loss).sum();
            let switch_total: f64 = members
                .iter()
                .map(|&i| {
                    let f = &frames[i];
                    // Shared setup cost: charge the horizon once, spread
                    // evenly; risk term per frame.
                    let shared_cost =
                        self.cost(RecoveryAction::SwitchSubstream, f) / members.len() as f64;
                    shared_cost
                        + self.cfg.lambda
                            * self.failure_probability(RecoveryAction::SwitchSubstream, f, stats)
                            * self.risk(f.frame_type)
                })
                .sum();
            if switch_total < current_total {
                for &i in &members {
                    let f = &frames[i];
                    decisions[i] = Decision {
                        dts_ms: f.dts_ms,
                        action: RecoveryAction::SwitchSubstream,
                        loss: switch_total / members.len() as f64,
                        failure_probability: self.failure_probability(
                            RecoveryAction::SwitchSubstream,
                            f,
                            stats,
                        ),
                    };
                }
            }
        }
        decisions
    }

    /// [`RecoveryDecider::decide`] plus structured observability: every
    /// chosen action is emitted into `sink` as a
    /// [`TraceEvent::RecoveryDecision`], attributed to `session`.
    /// Decisions are byte-identical to the untraced path.
    pub fn decide_traced(
        &self,
        frames: &[FrameState],
        stats: &RecoveryStats,
        sink: &TraceSink,
        now: SimTime,
        session: u64,
    ) -> Vec<Decision> {
        let decisions = self.decide(frames, stats);
        if sink.is_enabled() {
            for (d, f) in decisions.iter().zip(frames) {
                sink.emit(
                    now,
                    Some(session),
                    TraceEvent::RecoveryDecision {
                        dts_ms: d.dts_ms,
                        action: d.action.label(),
                        loss: d.loss,
                        failure_probability: d.failure_probability,
                    },
                );
                // A switch-class action picked for a frame whose
                // deadline is already inside the switch setup cannot
                // save that frame — surface the blown deadline instead
                // of letting it pass as "escalated with zero budget".
                if matches!(
                    d.action,
                    RecoveryAction::SwitchSubstream | RecoveryAction::FullStream
                ) && self.switch_deadline_blown(f, stats)
                {
                    sink.emit(
                        now,
                        Some(session),
                        TraceEvent::RecoveryDeadlineBlown {
                            dts_ms: d.dts_ms,
                            action: d.action.label(),
                        },
                    );
                }
            }
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(deadline_ms: u64, missing: u32, ftype: FrameType) -> FrameState {
        FrameState {
            dts_ms: 1000,
            deadline: SimDuration::from_millis(deadline_ms),
            size: 12_000,
            missing_packets: missing,
            frame_type: ftype,
            substream: 0,
        }
    }

    fn decider() -> RecoveryDecider {
        RecoveryDecider::new(RecoveryConfig::default())
    }

    #[test]
    fn ample_deadline_prefers_cheap_best_effort() {
        // Plenty of buffer: best-effort packet recovery is near-free and
        // almost certain within many retries.
        let d = decider();
        let stats = RecoveryStats::default();
        let f = frame(3_000, 2, FrameType::P);
        let decisions = d.decide(&[f], &stats);
        assert_eq!(decisions[0].action, RecoveryAction::BestEffortPackets);
        assert!(decisions[0].failure_probability < 0.05);
    }

    #[test]
    fn tight_deadline_escalates_to_dedicated() {
        // Almost no buffer left: one best-effort retry cycle won't fit,
        // but the dedicated node delivers most frames in ~71 ms.
        let d = decider();
        let stats = RecoveryStats::default();
        let f = frame(90, 2, FrameType::P);
        let decisions = d.decide(&[f], &stats);
        assert_eq!(decisions[0].action, RecoveryAction::DedicatedFrame);
    }

    #[test]
    fn i_frames_escalate_sooner_than_b_frames() {
        // At a deadline where best-effort is plausible but not certain,
        // the higher I-frame risk should flip the decision earlier.
        let d = decider();
        let mut stats = RecoveryStats::default();
        // Make best-effort mediocre: ~70% per-packet success.
        for _ in 0..700 {
            stats.observe_retx(true);
        }
        for _ in 0..300 {
            stats.observe_retx(false);
        }
        let mut flip_b = None;
        let mut flip_i = None;
        for deadline in (40..3000).step_by(20) {
            let b = d.decide(&[frame(deadline, 4, FrameType::B)], &stats)[0].action;
            let i = d.decide(&[frame(deadline, 4, FrameType::I)], &stats)[0].action;
            if b == RecoveryAction::BestEffortPackets && flip_b.is_none() {
                flip_b = Some(deadline);
            }
            if i == RecoveryAction::BestEffortPackets && flip_i.is_none() {
                flip_i = Some(deadline);
            }
        }
        let flip_b = flip_b.expect("B flips to best-effort");
        let flip_i = flip_i.unwrap_or(3000);
        assert!(
            flip_i >= flip_b,
            "I-frame keeps dedicated longer: B flips at {flip_b}, I at {flip_i}"
        );
    }

    #[test]
    fn burst_loss_on_one_substream_switches_it() {
        let d = decider();
        let stats = RecoveryStats::default();
        // Five consecutive frames of substream 2 missing with moderate
        // deadlines: per-frame dedicated recovery is inefficient.
        let frames: Vec<FrameState> = (0..5)
            .map(|i| {
                let mut f = frame(150 + i * 33, 8, FrameType::P);
                f.dts_ms = 1000 + i * 33;
                f.substream = 2;
                f
            })
            .collect();
        let decisions = d.decide(&frames, &stats);
        assert!(
            decisions
                .iter()
                .all(|dec| dec.action == RecoveryAction::SwitchSubstream),
            "{decisions:?}"
        );
    }

    #[test]
    fn scattered_losses_do_not_switch() {
        let d = decider();
        let stats = RecoveryStats::default();
        // One lost frame per substream: no consolidation possible.
        let frames: Vec<FrameState> = (0..4)
            .map(|i| {
                let mut f = frame(1_600, 1, FrameType::P);
                f.substream = i;
                f.dts_ms = 1000 + i as u64 * 33;
                f
            })
            .collect();
        let decisions = d.decide(&frames, &stats);
        assert!(decisions
            .iter()
            .all(|dec| dec.action == RecoveryAction::BestEffortPackets));
    }

    #[test]
    fn failure_probability_monotone_in_deadline() {
        let d = decider();
        let stats = RecoveryStats::default();
        let mut last = 1.1;
        for deadline in [30u64, 60, 120, 240, 480, 960] {
            let f = frame(deadline, 3, FrameType::P);
            let p = d.failure_probability(RecoveryAction::BestEffortPackets, &f, &stats);
            assert!(
                p <= last + 1e-12,
                "p not monotone at {deadline}: {p} > {last}"
            );
            last = p;
        }
    }

    #[test]
    fn failure_probability_increases_with_missing_packets() {
        let d = decider();
        let mut stats = RecoveryStats::default();
        for _ in 0..80 {
            stats.observe_retx(true);
        }
        for _ in 0..20 {
            stats.observe_retx(false);
        }
        let p1 = d.failure_probability(
            RecoveryAction::BestEffortPackets,
            &frame(1_000, 1, FrameType::P),
            &stats,
        );
        let p8 = d.failure_probability(
            RecoveryAction::BestEffortPackets,
            &frame(1_000, 8, FrameType::P),
            &stats,
        );
        assert!(p8 > p1, "p8 {p8} vs p1 {p1}");
    }

    #[test]
    fn dedicated_probability_follows_edf() {
        let d = decider();
        let stats = RecoveryStats::default();
        // At the median latency, failure probability is ~0.5.
        let p = d.failure_probability(
            RecoveryAction::DedicatedFrame,
            &frame(71, 1, FrameType::P),
            &stats,
        );
        assert!((p - 0.5).abs() < 0.05, "p {p}");
        // Far beyond the tail: certain success.
        let p = d.failure_probability(
            RecoveryAction::DedicatedFrame,
            &frame(5_000, 1, FrameType::P),
            &stats,
        );
        assert!(p < 0.01);
    }

    #[test]
    fn cost_ordering_matches_paper() {
        // Packet < frame < substream switch < full stream, for one frame.
        let d = decider();
        let f = frame(100, 1, FrameType::P);
        let c0 = d.cost(RecoveryAction::BestEffortPackets, &f);
        let c1 = d.cost(RecoveryAction::DedicatedFrame, &f);
        let c2 = d.cost(RecoveryAction::SwitchSubstream, &f);
        let c3 = d.cost(RecoveryAction::FullStream, &f);
        assert!(c0 < c1 && c1 < c2 && c2 < c3, "{c0} {c1} {c2} {c3}");
    }

    #[test]
    fn success_rate_prior_decays_with_observations() {
        let mut stats = RecoveryStats::default();
        let prior = stats.packet_success_rate();
        assert!((prior - 0.91).abs() < 0.01);
        for _ in 0..1000 {
            stats.observe_retx(false);
        }
        assert!(stats.packet_success_rate() < 0.05);
    }

    #[test]
    fn blown_switch_deadline_is_certain_failure_at_the_boundary() {
        let d = decider();
        // An EDF that claims probability mass at zero latency: without
        // the explicit blown-deadline branch, a saturated zero budget
        // would read `1 - cdf(0) = 0.5` — "escalate with zero budget" —
        // instead of certain failure.
        let stats = RecoveryStats {
            dedicated_latency: EmpiricalCdf::from_points(&[(0.0, 0.5), (100.0, 1.0)]),
            ..RecoveryStats::default()
        };
        for action in [RecoveryAction::SwitchSubstream, RecoveryAction::FullStream] {
            // deadline < setup: blown.
            let f = frame(10, 2, FrameType::P);
            assert!(d.switch_deadline_blown(&f, &stats));
            assert_eq!(d.failure_probability(action, &f, &stats), 1.0);
            // deadline == setup (30 ms): still blown — zero budget.
            let f = frame(30, 2, FrameType::P);
            assert!(d.switch_deadline_blown(&f, &stats));
            assert_eq!(d.failure_probability(action, &f, &stats), 1.0);
            // One millisecond of budget: back on the EDF.
            let f = frame(31, 2, FrameType::P);
            assert!(!d.switch_deadline_blown(&f, &stats));
            let p = d.failure_probability(action, &f, &stats);
            assert!(p < 1.0, "1 ms budget must consult the EDF, got {p}");
        }
        // The dedicated-frame path is untouched by the switch branch.
        let f = frame(10, 2, FrameType::P);
        let p = d.failure_probability(RecoveryAction::DedicatedFrame, &f, &stats);
        assert!((p - 0.45).abs() < 1e-9, "p {p}");
    }

    #[test]
    fn blown_deadline_switch_emits_trace_event() {
        let d = decider();
        let stats = RecoveryStats::default();
        // A burst on substream 2 where the earliest frame's deadline is
        // already inside the 30 ms switch setup: the collective switch
        // can still win on the later frames, but the doomed frame must
        // be called out.
        let mut frames: Vec<FrameState> = (0..5)
            .map(|i| {
                let mut f = frame(150 + i * 33, 8, FrameType::P);
                f.dts_ms = 1000 + i * 33;
                f.substream = 2;
                f
            })
            .collect();
        frames[0].deadline = SimDuration::from_millis(20);
        let sink = TraceSink::unbounded();
        let decisions = d.decide_traced(&frames, &stats, &sink, SimTime::from_secs(1), 42);
        assert!(
            decisions
                .iter()
                .all(|dec| dec.action == RecoveryAction::SwitchSubstream),
            "{decisions:?}"
        );
        let records = sink.snapshot();
        let blown: Vec<_> = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RecoveryDeadlineBlown { .. }))
            .collect();
        assert_eq!(blown.len(), 1, "exactly the doomed frame: {records:?}");
        match &blown[0].event {
            TraceEvent::RecoveryDeadlineBlown { dts_ms, action } => {
                assert_eq!(*dts_ms, 1000);
                assert_eq!(*action, "switch_substream");
            }
            other => panic!("unexpected event {other:?}"),
        }
        // The traced path stays byte-identical to the untraced one.
        assert_eq!(decisions, d.decide(&frames, &stats));
    }

    #[test]
    fn zero_deadline_fails_everything_but_still_decides() {
        let d = decider();
        let stats = RecoveryStats::default();
        let f = frame(0, 2, FrameType::P);
        let decisions = d.decide(std::slice::from_ref(&f), &stats);
        assert_eq!(decisions.len(), 1);
        assert!(d.failure_probability(RecoveryAction::BestEffortPackets, &f, &stats) >= 1.0 - 1e-9);
    }
}
