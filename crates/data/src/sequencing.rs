//! Distributed frame sequencing: the client-side global chain and the
//! chain-matching algorithm (§5.2, Algorithm 1 of the paper).
//!
//! Every relay embeds a *local chain* — the footprints of the last δ
//! frames of the stream — in each data packet. The client merges these
//! local chains into a single *global chain* that defines playout order:
//!
//! 1. a local chain attaches only if it contains the terminal frame of
//!    the global chain (continuity check); unmatched tail frames are
//!    appended with `UNLINKED` status;
//! 2. each appended frame is then CRC-validated against the frame
//!    headers the client has actually received (the data pool); frames
//!    that validate become `LINKED`;
//! 3. any validation failure evicts all `UNLINKED` frames, preserving
//!    chain integrity;
//! 4. chains that cannot attach yet (their predecessors are still in
//!    flight) wait in a `misMatchChains` pool and are retried after
//!    every successful merge.

use crate::ring::SeqRing;
use rlive_media::crc::Crc32;
use rlive_media::footprint::{Footprint, LocalChain, CRC_DEPTH};
use rlive_media::frame::FrameHeader;
use std::collections::VecDeque;

/// Link status of a global-chain entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkStatus {
    /// Appended from a local chain but not yet CRC-validated.
    Unlinked,
    /// Validated against received frame headers.
    Linked,
}

/// Outcome of offering one local chain to the global chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchResult {
    /// The chain extended (or was already contained in) the global chain.
    Matched,
    /// The chain does not connect yet; it was pooled for retry.
    Deferred,
    /// The chain conflicted with validated history and was rejected.
    Rejected,
}

#[derive(Debug, Clone)]
struct Entry {
    footprint: Footprint,
    status: LinkStatus,
}

/// The client's global frame chain plus supporting state.
///
/// # Examples
///
/// ```
/// use rlive_data::sequencing::{GlobalChain, MatchResult};
/// use rlive_media::footprint::ChainGenerator;
/// use rlive_media::gop::{GopConfig, GopGenerator};
/// use rlive_media::packet::PACKET_PAYLOAD;
/// use rlive_sim::SimRng;
///
/// let mut gen = GopGenerator::new(1, GopConfig::default(), SimRng::new(1));
/// let mut relay = ChainGenerator::new(PACKET_PAYLOAD);
/// let mut global = GlobalChain::new();
/// for frame in gen.take_frames(8) {
///     let chain = relay.observe(&frame.header);
///     global.ingest_header(frame.header);
///     assert_eq!(global.ingest_chain(&chain), MatchResult::Matched);
/// }
/// assert_eq!(global.len(), 8);
/// ```
#[derive(Debug)]
pub struct GlobalChain {
    entries: VecDeque<Entry>,
    /// Frame headers received so far, ring-indexed by dts — the "data
    /// pool" used for CRC validation.
    headers: SeqRing<FrameHeader>,
    /// Local chains that could not attach yet.
    mismatched: Vec<LocalChain>,
    /// Bound on the mismatch pool to survive pathological input.
    max_mismatched: usize,
    /// Frames already handed to the player (dts); kept so duplicate
    /// chains re-deliver nothing.
    consumed_until: Option<u64>,
    /// Headers of the most recently consumed frames, kept as CRC context
    /// for validating successors after the chain head is popped.
    tail_context: VecDeque<FrameHeader>,
    /// dts of the first frame whose data this client ever received.
    /// Chains reference up to δ−1 older frames that a mid-stream joiner
    /// will never receive; entries below the floor are skipped so the
    /// chain head cannot deadlock on unobtainable frames.
    join_floor: Option<u64>,
}

impl Default for GlobalChain {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalChain {
    /// Creates an empty global chain.
    pub fn new() -> Self {
        GlobalChain {
            entries: VecDeque::new(),
            headers: SeqRing::new(),
            mismatched: Vec::new(),
            max_mismatched: 64,
            consumed_until: None,
            tail_context: VecDeque::with_capacity(CRC_DEPTH + 1),
            join_floor: None,
        }
    }

    /// Records a received frame header (from any packet) into the data
    /// pool, then revalidates any `UNLINKED` entries that were waiting
    /// for it.
    pub fn ingest_header(&mut self, header: FrameHeader) {
        if self.join_floor.is_none() {
            self.join_floor = Some(header.dts_ms);
        }
        self.headers.insert(header.dts_ms, header);
        self.revalidate();
    }

    /// Number of entries currently in the global chain.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of pooled, not-yet-matched chains.
    pub fn mismatched_count(&self) -> usize {
        self.mismatched.len()
    }

    /// The dts sequence of the chain, for inspection.
    pub fn dts_sequence(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.footprint.dts_ms).collect()
    }

    /// The status of the entry for `dts`, if present.
    pub fn status_of(&self, dts: u64) -> Option<LinkStatus> {
        self.entries
            .iter()
            .find(|e| e.footprint.dts_ms == dts)
            .map(|e| e.status)
    }

    fn last_footprint(&self) -> Option<Footprint> {
        self.entries.back().map(|e| e.footprint)
    }

    /// Validates `footprint` at position `idx` of the chain by
    /// recomputing its CRC from the headers of it and its (up to)
    /// `CRC_DEPTH` predecessors. `None` means "cannot validate yet"
    /// (headers missing); `Some(bool)` is the verdict.
    fn validate_at(&self, idx: usize) -> Option<bool> {
        let fp = &self.entries[idx].footprint;
        let header = self.headers.get(fp.dts_ms)?;
        let start = idx.saturating_sub(CRC_DEPTH);
        let mut prior: Vec<FrameHeader> = Vec::new();
        // When the chain holds fewer than CRC_DEPTH predecessors, fill
        // from the tail context (headers of recently consumed frames).
        let need_from_tail = CRC_DEPTH - (idx - start);
        if need_from_tail > 0 {
            let tl = self.tail_context.len();
            for h in self
                .tail_context
                .iter()
                .skip(tl.saturating_sub(need_from_tail))
            {
                prior.push(*h);
            }
        }
        for e in self.entries.iter().skip(start).take(idx - start) {
            prior.push(*self.headers.get(e.footprint.dts_ms)?);
        }
        if prior.len() < CRC_DEPTH {
            // Mid-stream join (or true stream head): the relay's CRC
            // context cannot be reconstructed, so the first CRC_DEPTH
            // entries are accepted on header presence alone. Everything
            // after them gets full validation.
            return Some(true);
        }
        let mut crc = Crc32::new();
        for p in &prior {
            crc.update(&p.to_bytes());
        }
        crc.update(&header.to_bytes());
        Some(crc.finish() == fp.crc)
    }

    /// Attempts Algorithm 1 on a single local chain. Does not touch the
    /// mismatch pool.
    fn try_match(&mut self, lchain: &LocalChain) -> MatchResult {
        if lchain.is_empty() {
            return MatchResult::Matched;
        }
        // Bootstrap: adopt the first chain wholesale.
        if self.entries.is_empty() {
            for fp in lchain.footprints() {
                if self.consumed_until.map(|c| fp.dts_ms <= c).unwrap_or(false) {
                    continue;
                }
                // Skip frames from before this client joined.
                if self.join_floor.map(|f| fp.dts_ms < f).unwrap_or(false) {
                    continue;
                }
                self.entries.push_back(Entry {
                    footprint: *fp,
                    status: LinkStatus::Unlinked,
                });
            }
            self.revalidate();
            return MatchResult::Matched;
        }

        let terminal = self.last_footprint().expect("chain non-empty");
        // Lines 2–10: scan lchain; once the terminal frame of gChain is
        // found, append the following frames as UNLINKED.
        let mut find_cont = false;
        let mut appended = 0usize;
        for fp in lchain.footprints() {
            if find_cont {
                self.entries.push_back(Entry {
                    footprint: *fp,
                    status: LinkStatus::Unlinked,
                });
                appended += 1;
            } else if *fp == terminal {
                find_cont = true;
            }
        }
        if !find_cont {
            // Also accept chains fully contained in gChain (no-ops):
            // every footprint already present means nothing to do.
            let all_known = lchain
                .footprints()
                .iter()
                .all(|fp| self.entries.iter().any(|e| e.footprint == *fp));
            if all_known {
                return MatchResult::Matched;
            }
            return MatchResult::Deferred;
        }
        let _ = appended;
        // Lines 14–23: walk the new tail, validating CRCs against the
        // data pool. A definite mismatch evicts all UNLINKED frames.
        if self.revalidate() {
            MatchResult::Matched
        } else {
            MatchResult::Rejected
        }
    }

    /// Revalidates `UNLINKED` entries in order. Returns `false` if a
    /// definite CRC mismatch forced eviction of the unlinked tail.
    fn revalidate(&mut self) -> bool {
        let mut idx = 0;
        while idx < self.entries.len() {
            if self.entries[idx].status == LinkStatus::Linked {
                idx += 1;
                continue;
            }
            match self.validate_at(idx) {
                Some(true) => {
                    self.entries[idx].status = LinkStatus::Linked;
                    idx += 1;
                }
                Some(false) => {
                    // Push out the unlinked frames from gChain.
                    self.entries.retain(|e| e.status == LinkStatus::Linked);
                    return false;
                }
                // Headers not yet received: stop; later ingest retries.
                None => break,
            }
        }
        true
    }

    /// Offers a local chain to the global chain, managing the mismatch
    /// pool: deferred chains are pooled, and every successful merge
    /// retries pooled chains until a fixed point.
    pub fn ingest_chain(&mut self, lchain: &LocalChain) -> MatchResult {
        let result = self.try_match(lchain);
        match result {
            MatchResult::Matched => {
                self.drain_mismatched();
            }
            MatchResult::Deferred => {
                if self.mismatched.len() < self.max_mismatched && !self.mismatched.contains(lchain)
                {
                    self.mismatched.push(lchain.clone());
                }
            }
            MatchResult::Rejected => {}
        }
        result
    }

    fn drain_mismatched(&mut self) {
        loop {
            let mut progressed = false;
            let pending = std::mem::take(&mut self.mismatched);
            for chain in pending {
                match self.try_match(&chain) {
                    MatchResult::Matched => progressed = true,
                    MatchResult::Deferred => self.mismatched.push(chain),
                    MatchResult::Rejected => {}
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Pops the head of the chain if it is `LINKED`, handing it to the
    /// playout path. Returns the footprint so the caller can check frame
    /// completeness (`cnt`).
    pub fn pop_linked_head(&mut self) -> Option<Footprint> {
        match self.entries.front() {
            Some(e) if e.status == LinkStatus::Linked => {
                let fp = e.footprint;
                self.entries.pop_front();
                self.consumed_until = Some(fp.dts_ms);
                if let Some(h) = self.headers.get(fp.dts_ms) {
                    self.tail_context.push_back(*h);
                    while self.tail_context.len() > CRC_DEPTH {
                        self.tail_context.pop_front();
                    }
                }
                // Headers of consumed frames are no longer needed for
                // validation ordering but keep a bounded window for
                // CRC context of successors.
                self.gc_headers();
                Some(fp)
            }
            _ => None,
        }
    }

    /// Force-pops the head entry regardless of status — the playout
    /// deadline passed and the player is skipping the frame. The entry
    /// is treated as consumed so late recoveries are deduplicated.
    pub fn force_pop_head(&mut self) -> Option<Footprint> {
        let e = self.entries.pop_front()?;
        let fp = e.footprint;
        self.consumed_until = Some(fp.dts_ms);
        if let Some(h) = self.headers.get(fp.dts_ms) {
            self.tail_context.push_back(*h);
            while self.tail_context.len() > CRC_DEPTH {
                self.tail_context.pop_front();
            }
        } else {
            // Without the header the CRC context breaks; clear it so
            // successors fall back to unverifiable-accept.
            self.tail_context.clear();
        }
        // Successors may have been waiting on the removed entry's
        // validation; re-run so already-received frames can link now.
        self.revalidate();
        Some(fp)
    }

    /// The frame header of the chain head, if its header was received.
    pub fn head_header(&self) -> Option<FrameHeader> {
        let fp = self.entries.front()?.footprint;
        self.headers.get(fp.dts_ms).copied()
    }

    /// Reads (without popping) the head footprint and status.
    pub fn head(&self) -> Option<(Footprint, LinkStatus)> {
        self.entries.front().map(|e| (e.footprint, e.status))
    }

    fn gc_headers(&mut self) {
        // Keep headers for everything still in the chain plus a small
        // margin of recently consumed frames (CRC context).
        if self.headers.len() < 1024 {
            return;
        }
        let live: std::collections::HashSet<u64> =
            self.entries.iter().map(|e| e.footprint.dts_ms).collect();
        let floor = self.consumed_until.unwrap_or(0).saturating_sub(10_000);
        self.headers
            .retain(|dts, _| live.contains(&dts) || dts >= floor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlive_media::footprint::ChainGenerator;
    use rlive_media::gop::{GopConfig, GopGenerator};
    use rlive_media::packet::PACKET_PAYLOAD;
    use rlive_sim::SimRng;

    /// Produces (headers, per-frame local chains) for a synthetic stream.
    fn stream(n: usize) -> (Vec<FrameHeader>, Vec<LocalChain>) {
        let mut g = GopGenerator::new(3, GopConfig::default(), SimRng::new(11));
        let headers: Vec<FrameHeader> = g.take_frames(n).iter().map(|f| f.header).collect();
        let mut cg = ChainGenerator::new(PACKET_PAYLOAD);
        let chains = headers.iter().map(|h| cg.observe(h)).collect();
        (headers, chains)
    }

    #[test]
    fn in_order_single_source_links_everything() {
        let (headers, chains) = stream(20);
        let mut gc = GlobalChain::new();
        for (h, c) in headers.iter().zip(&chains) {
            gc.ingest_header(*h);
            assert_eq!(gc.ingest_chain(c), MatchResult::Matched);
        }
        assert_eq!(gc.len(), 20);
        for h in &headers {
            assert_eq!(gc.status_of(h.dts_ms), Some(LinkStatus::Linked));
        }
    }

    #[test]
    fn chain_order_matches_stream_order() {
        let (headers, chains) = stream(30);
        let mut gc = GlobalChain::new();
        for (h, c) in headers.iter().zip(&chains) {
            gc.ingest_header(*h);
            gc.ingest_chain(c);
        }
        let expected: Vec<u64> = headers.iter().map(|h| h.dts_ms).collect();
        assert_eq!(gc.dts_sequence(), expected);
    }

    #[test]
    fn two_sources_interleaved() {
        // Frames alternate between two relays; each relay's chains cover
        // all frames (both observe the full header sequence), so the
        // client can merge either relay's chain stream.
        let (headers, chains) = stream(40);
        let mut gc = GlobalChain::new();
        for i in 0..40 {
            gc.ingest_header(headers[i]);
            // Only the relay serving this frame's substream delivers its
            // chain, but chains are identical across relays.
            gc.ingest_chain(&chains[i]);
        }
        assert_eq!(gc.len(), 40);
    }

    #[test]
    fn lost_chain_recovered_by_next_overlapping_chain() {
        // The Fig 7(b) scenario: one local chain is lost entirely, but
        // the next chain overlaps the global chain's terminal frame and
        // extends it across the gap (δ=4 tolerates short gaps).
        let (headers, chains) = stream(10);
        let mut gc = GlobalChain::new();
        for h in &headers {
            gc.ingest_header(*h);
        }
        gc.ingest_chain(&chains[3]); // gChain = f0..f3
                                     // chains[4] lost; chains[5] covers f2..f5 and overlaps f3.
        assert_eq!(gc.ingest_chain(&chains[5]), MatchResult::Matched);
        assert_eq!(gc.len(), 6);
        assert_eq!(gc.status_of(headers[5].dts_ms), Some(LinkStatus::Linked));
    }

    #[test]
    fn disconnected_chain_deferred_then_merged() {
        let (headers, chains) = stream(16);
        let mut gc = GlobalChain::new();
        for h in &headers {
            gc.ingest_header(*h);
        }
        gc.ingest_chain(&chains[3]); // f0..f3
                                     // A chain far ahead cannot connect: f8..f11.
        assert_eq!(gc.ingest_chain(&chains[11]), MatchResult::Deferred);
        assert_eq!(gc.mismatched_count(), 1);
        // The bridging chain f5..f8 also cannot connect (terminal f3 not
        // inside), deferred too.
        assert_eq!(gc.ingest_chain(&chains[8]), MatchResult::Deferred);
        // f3..f6 arrives: connects, then drains the pool transitively.
        assert_eq!(gc.ingest_chain(&chains[6]), MatchResult::Matched);
        assert_eq!(gc.len(), 12, "chain: {:?}", gc.dts_sequence());
        assert_eq!(gc.mismatched_count(), 0);
    }

    #[test]
    fn corrupted_footprint_rejected_and_unlinked_evicted() {
        let (headers, chains) = stream(8);
        let mut gc = GlobalChain::new();
        for h in &headers {
            gc.ingest_header(*h);
        }
        gc.ingest_chain(&chains[3]);
        let good_len = gc.len();
        // Forge a chain whose appended tail has a wrong CRC.
        let mut footprints = chains[5].footprints().to_vec();
        let last = footprints.last_mut().expect("non-empty");
        last.crc ^= 0xDEAD_BEEF;
        let forged = LocalChain::new(footprints);
        assert_eq!(gc.ingest_chain(&forged), MatchResult::Rejected);
        // All linked frames survive; the corrupt tail is gone.
        assert_eq!(gc.len(), good_len + 1, "only the valid f4 entry stays");
        assert_eq!(gc.status_of(headers[5].dts_ms), None);
        // The genuine chain can still attach afterwards.
        assert_eq!(gc.ingest_chain(&chains[5]), MatchResult::Matched);
        assert_eq!(gc.status_of(headers[5].dts_ms), Some(LinkStatus::Linked));
    }

    #[test]
    fn validation_waits_for_headers() {
        let (headers, chains) = stream(6);
        let mut gc = GlobalChain::new();
        // Chains arrive before any headers (data packets lost): entries
        // stay UNLINKED.
        gc.ingest_chain(&chains[3]);
        assert_eq!(gc.status_of(headers[0].dts_ms), Some(LinkStatus::Unlinked));
        // Headers trickle in; entries link progressively.
        for h in &headers[..4] {
            gc.ingest_header(*h);
        }
        for h in &headers[..4] {
            assert_eq!(gc.status_of(h.dts_ms), Some(LinkStatus::Linked));
        }
    }

    #[test]
    fn pop_linked_head_consumes_in_order() {
        let (headers, chains) = stream(12);
        let mut gc = GlobalChain::new();
        for (h, c) in headers.iter().zip(&chains) {
            gc.ingest_header(*h);
            gc.ingest_chain(c);
        }
        let mut popped = Vec::new();
        while let Some(fp) = gc.pop_linked_head() {
            popped.push(fp.dts_ms);
        }
        assert_eq!(popped, headers.iter().map(|h| h.dts_ms).collect::<Vec<_>>());
        assert!(gc.is_empty());
    }

    #[test]
    fn pop_stops_at_unlinked() {
        let (headers, chains) = stream(8);
        let mut gc = GlobalChain::new();
        // Headers only for the first two frames.
        gc.ingest_header(headers[0]);
        gc.ingest_header(headers[1]);
        gc.ingest_chain(&chains[3]);
        assert!(gc.pop_linked_head().is_some());
        assert!(gc.pop_linked_head().is_some());
        assert!(gc.pop_linked_head().is_none(), "f2 lacks a header");
    }

    #[test]
    fn duplicate_chains_are_idempotent() {
        let (headers, chains) = stream(10);
        let mut gc = GlobalChain::new();
        for (h, c) in headers.iter().zip(&chains) {
            gc.ingest_header(*h);
            gc.ingest_chain(c);
            gc.ingest_chain(c);
        }
        assert_eq!(gc.len(), 10);
    }

    #[test]
    fn mismatch_pool_bounded() {
        let (_, chains) = stream(600);
        let mut gc = GlobalChain::new();
        gc.ingest_chain(&chains[0]);
        // Flood with far-future chains that never connect.
        for c in chains.iter().skip(100) {
            gc.ingest_chain(c);
        }
        assert!(gc.mismatched_count() <= 64);
    }
}
