//! Packet reorder buffer and client playback buffer.
//!
//! The reorder buffer tracks per-frame packet arrival across substreams,
//! detects completeness (all `cnt` packets present) and gaps (for fast
//! retransmission), and feeds headers/chains into the
//! [`crate::sequencing::GlobalChain`]. Complete, linked frames are moved
//! into the [`PlaybackBuffer`], which models the player: frames drain at
//! the presentation rate, occupancy below the fallback threshold
//! triggers CDN full-stream fallback (§7.4), and an empty buffer is a
//! rebuffering event.

use crate::ring::SeqRing;
use crate::sequencing::GlobalChain;
use rlive_media::frame::FrameHeader;
use rlive_media::packet::DataPacket;
use rlive_sim::trace::{TraceEvent, TraceSink};
use rlive_sim::{SimDuration, SimTime};

/// Packet-index words kept inline before spilling to the heap: 4 × 64 =
/// 256 packets covers every frame a real encoder ladder emits (an
/// I-frame tops out around 100 packets), so steady state never spills.
const INLINE_PACKET_WORDS: usize = 4;

/// Presence set over packet indices of one frame: an inline bitset with
/// a heap spill only for pathological frames beyond
/// [`INLINE_PACKET_WORDS`]` * 64` packets. Replaces the old per-frame
/// `HashSet<u32>` (one heap allocation per frame plus rehashing) with
/// zero allocation in the common case.
#[derive(Debug, Default, Clone)]
struct PacketSet {
    inline: [u64; INLINE_PACKET_WORDS],
    spill: Vec<u64>,
    count: u32,
}

impl PacketSet {
    /// Inserts `idx`; returns whether it was newly present (the
    /// `HashSet::insert` contract).
    fn insert(&mut self, idx: u32) -> bool {
        let (word, bit) = (idx as usize / 64, idx as usize % 64);
        let slot = if word < INLINE_PACKET_WORDS {
            &mut self.inline[word]
        } else {
            let spill_word = word - INLINE_PACKET_WORDS;
            if self.spill.len() <= spill_word {
                self.spill.resize(spill_word + 1, 0);
            }
            &mut self.spill[spill_word]
        };
        let mask = 1u64 << bit;
        if *slot & mask != 0 {
            return false;
        }
        *slot |= mask;
        self.count += 1;
        true
    }

    fn contains(&self, idx: u32) -> bool {
        let (word, bit) = (idx as usize / 64, idx as usize % 64);
        let slot = if word < INLINE_PACKET_WORDS {
            self.inline[word]
        } else {
            self.spill
                .get(word - INLINE_PACKET_WORDS)
                .copied()
                .unwrap_or(0)
        };
        slot & (1u64 << bit) != 0
    }

    fn len(&self) -> u32 {
        self.count
    }
}

/// Per-frame packet arrival state.
#[derive(Debug)]
struct FrameAssembly {
    header: FrameHeader,
    expected: u32,
    received: PacketSet,
    first_arrival: SimTime,
    /// Highest packet index seen; used for gap-based fast retransmit.
    max_seen: u32,
    /// Substream the frame arrived on (last packet wins, as with the
    /// old side table).
    substream: u16,
}

impl FrameAssembly {
    fn missing(&self) -> Vec<u32> {
        (0..self.expected)
            .filter(|&i| !self.received.contains(i))
            .collect()
    }

    fn complete(&self) -> bool {
        self.received.len() >= self.expected
    }
}

/// A frame that finished reassembly, ready for the playback buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyFrame {
    /// The frame header.
    pub header: FrameHeader,
    /// When the last packet arrived.
    pub completed_at: SimTime,
}

/// Loss indication for the recovery engine: a frame with missing
/// packets, annotated with arrival context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncompleteFrame {
    /// The frame header.
    pub header: FrameHeader,
    /// Substream the frame belongs to.
    pub substream: u16,
    /// Missing packet indices.
    pub missing: Vec<u32>,
    /// Expected total packets.
    pub expected: u32,
    /// Whether packets after a gap arrived (out-of-order signal that
    /// justifies fast retransmission rather than timeout, §5.3).
    pub out_of_order_gap: bool,
    /// First packet arrival time (for timeout-based retransmission).
    pub first_arrival: SimTime,
}

/// The client-side reorder buffer across all substreams of one stream.
#[derive(Debug)]
pub struct ReorderBuffer {
    /// In-flight frame assemblies, ring-indexed by dts (the substream
    /// of each frame lives inside [`FrameAssembly`]; the old per-dts
    /// side table is gone).
    assembling: SeqRing<FrameAssembly>,
    /// The global chain being built from embedded local chains.
    chain: GlobalChain,
    /// Frames fully received but not yet released in chain order.
    complete: SeqRing<ReadyFrame>,
    /// Duplicate packets observed (for overhead accounting).
    duplicates: u64,
    packets: u64,
    /// dts of the newest frame already released to playback; packets at
    /// or below it are duplicates.
    released_watermark: Option<u64>,
    /// When the release head first became blocked (present but not
    /// releasable), for deadline-based skipping.
    blocked_since: Option<SimTime>,
    /// Frames deliberately skipped past their deadline.
    skipped: u64,
    /// Frames announced by embedded chains: dts -> (first seen, packet
    /// count from the footprint). Entries with no data at all are
    /// invisible to `incomplete_frames` (nothing ever assembled), so
    /// this map is what lets the recovery engine find wholly-lost
    /// frames.
    chain_announced: SeqRing<(SimTime, u32)>,
    /// Structured trace sink (disabled by default) and the session the
    /// buffer belongs to, for deadline-skip observability.
    trace: TraceSink,
    trace_session: u64,
}

impl Default for ReorderBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl ReorderBuffer {
    /// Creates an empty reorder buffer.
    pub fn new() -> Self {
        ReorderBuffer {
            assembling: SeqRing::new(),
            chain: GlobalChain::new(),
            complete: SeqRing::new(),
            duplicates: 0,
            packets: 0,
            released_watermark: None,
            blocked_since: None,
            skipped: 0,
            chain_announced: SeqRing::new(),
            trace: TraceSink::disabled(),
            trace_session: 0,
        }
    }

    /// Attaches a structured trace sink; deadline skips are emitted as
    /// [`TraceEvent::ReorderHeadSkip`] attributed to `session`.
    pub fn set_trace_sink(&mut self, session: u64, sink: TraceSink) {
        self.trace = sink;
        self.trace_session = session;
    }

    /// Access to the underlying global chain (for inspection).
    pub fn chain(&self) -> &GlobalChain {
        &self.chain
    }

    /// Ingests one data packet at `now`; returns frames that became
    /// playable (complete and in linked chain order).
    pub fn ingest(&mut self, now: SimTime, pkt: &DataPacket) -> Vec<ReadyFrame> {
        self.packets += 1;
        let dts = pkt.frame.dts_ms;
        if self.released_watermark.map(|w| dts <= w).unwrap_or(false) {
            self.duplicates += 1;
            return Vec::new();
        }
        self.chain.ingest_header(pkt.frame);
        for fp in pkt.chain.footprints() {
            self.chain_announced
                .get_or_insert_with(fp.dts_ms, || (now, fp.cnt));
        }
        self.chain.ingest_chain(&pkt.chain);

        let asm = self.assembling.get_or_insert_with(dts, || FrameAssembly {
            header: pkt.frame,
            expected: pkt.packet_count,
            received: PacketSet::default(),
            first_arrival: now,
            max_seen: 0,
            substream: pkt.substream,
        });
        asm.substream = pkt.substream;
        if !asm.received.insert(pkt.packet_index) {
            self.duplicates += 1;
        }
        asm.max_seen = asm.max_seen.max(pkt.packet_index);
        if asm.complete() {
            let header = asm.header;
            self.assembling.remove(dts);
            self.complete.insert(
                dts,
                ReadyFrame {
                    header,
                    completed_at: now,
                },
            );
        }
        self.release(now)
    }

    /// Batch form of [`ReorderBuffer::ingest`] used by the simulator:
    /// ingests every received packet index of one frame in a single
    /// call, processing the chain once. Semantically identical to
    /// per-packet ingestion of the same indices.
    pub fn ingest_slice(
        &mut self,
        now: SimTime,
        header: FrameHeader,
        substream: u16,
        received: &[u32],
        total: u32,
        chain: Option<&rlive_media::footprint::LocalChain>,
    ) -> Vec<ReadyFrame> {
        self.packets += received.len() as u64;
        let dts = header.dts_ms;
        if self.released_watermark.map(|w| dts <= w).unwrap_or(false) {
            self.duplicates += received.len() as u64;
            return Vec::new();
        }
        self.chain.ingest_header(header);
        if let Some(c) = chain {
            for fp in c.footprints() {
                self.chain_announced
                    .get_or_insert_with(fp.dts_ms, || (now, fp.cnt));
            }
            self.chain.ingest_chain(c);
        }
        let asm = self.assembling.get_or_insert_with(dts, || FrameAssembly {
            header,
            expected: total,
            received: PacketSet::default(),
            first_arrival: now,
            max_seen: 0,
            substream,
        });
        asm.substream = substream;
        for &idx in received {
            if !asm.received.insert(idx) {
                self.duplicates += 1;
            }
            asm.max_seen = asm.max_seen.max(idx);
        }
        if asm.complete() {
            self.assembling.remove(dts);
            self.complete.insert(
                dts,
                ReadyFrame {
                    header,
                    completed_at: now,
                },
            );
        }
        self.release(now)
    }

    /// Ingests a local chain without any data (centralised-sequencing
    /// baseline: sequence metadata travels separately from payloads).
    pub fn ingest_chain_only(&mut self, chain: &rlive_media::footprint::LocalChain) {
        self.chain.ingest_chain(chain);
    }

    /// Releases frames that became orderable after out-of-band chain or
    /// header arrival (used with [`ReorderBuffer::ingest_chain_only`]).
    pub fn drain_ready(&mut self, now: SimTime) -> Vec<ReadyFrame> {
        self.release(now)
    }

    /// Marks a frame as recovered in full from a dedicated node (frame
    /// recovery or full-stream fallback delivers whole frames).
    pub fn ingest_whole_frame(&mut self, now: SimTime, header: FrameHeader) -> Vec<ReadyFrame> {
        if self
            .released_watermark
            .map(|w| header.dts_ms <= w)
            .unwrap_or(false)
        {
            return Vec::new();
        }
        self.chain.ingest_header(header);
        self.assembling.remove(header.dts_ms);
        self.complete.insert(
            header.dts_ms,
            ReadyFrame {
                header,
                completed_at: now,
            },
        );
        self.release(now)
    }

    /// Releases complete frames in global-chain order.
    fn release(&mut self, now: SimTime) -> Vec<ReadyFrame> {
        // Stage-profiled (wall clock, stderr-only reporting): this is
        // the reorder drain every ingest/skip path funnels through.
        let _span = rlive_sim::obs::time_stage(rlive_sim::obs::Stage::ReorderDrain);
        let mut out = Vec::new();
        loop {
            let Some((fp, status)) = self.chain.head() else {
                self.blocked_since = None;
                break;
            };
            // Only release when the head is linked AND its data complete.
            let releasable = status == crate::sequencing::LinkStatus::Linked
                && self.complete.contains_key(fp.dts_ms);
            if !releasable {
                // Remember when the head got stuck, for deadline skips.
                if self.blocked_since.is_none() {
                    self.blocked_since = Some(now);
                }
                break;
            }
            let ready = self.complete.remove(fp.dts_ms).expect("checked");
            self.chain.pop_linked_head();
            self.chain_announced.remove(fp.dts_ms);
            // A late duplicate can re-create a ghost assembly for a
            // frame that already completed; releasing the frame wipes
            // its substream attribution (the ghost itself only dies at
            // `expire_before`), so recovery sees substream 0 for it —
            // the exact lifecycle the old `substream_of` side table
            // had, which the golden outputs pin.
            if let Some(ghost) = self.assembling.get_mut(fp.dts_ms) {
                ghost.substream = 0;
            }
            self.released_watermark = Some(fp.dts_ms);
            self.blocked_since = None;
            out.push(ready);
        }
        out
    }

    /// How long the release head has been blocked, if it is.
    pub fn head_blocked_since(&self) -> Option<SimTime> {
        self.blocked_since
    }

    /// The frame type of the blocked head, when its header is known.
    /// B-frames are droppable without corrupting decode; anything else
    /// forces the player to wait or jump to the next random-access
    /// point.
    pub fn head_frame_type(&self) -> Option<rlive_media::frame::FrameType> {
        self.chain.head_header().map(|h| h.frame_type)
    }

    /// Skips the blocked head frame past its deadline: the frame is
    /// abandoned (visual glitch) so playback can continue. Returns
    /// frames that became releasable after the skip.
    pub fn skip_blocked_head(&mut self, now: SimTime) -> Vec<ReadyFrame> {
        let Some((fp, _)) = self.chain.head() else {
            return Vec::new();
        };
        self.chain.force_pop_head();
        self.assembling.remove(fp.dts_ms);
        self.complete.remove(fp.dts_ms);
        self.chain_announced.remove(fp.dts_ms);
        self.released_watermark = Some(fp.dts_ms);
        self.blocked_since = None;
        self.skipped += 1;
        let released = self.release(now);
        self.trace.emit(
            now,
            Some(self.trace_session),
            TraceEvent::ReorderHeadSkip {
                dts_ms: fp.dts_ms,
                released: released.len() as u32,
            },
        );
        released
    }

    /// Frames skipped past their deadline so far.
    pub fn skipped_count(&self) -> u64 {
        self.skipped
    }

    /// Frames with missing packets, for the recovery engine. A frame is
    /// reported once packets beyond a gap have arrived (out-of-order
    /// fast path) or once `timeout` has elapsed since its first packet.
    pub fn incomplete_frames(&self, now: SimTime, timeout: SimDuration) -> Vec<IncompleteFrame> {
        self.assembling
            .values()
            .filter_map(|asm| {
                let missing = asm.missing();
                if missing.is_empty() {
                    return None;
                }
                let gap = missing.iter().any(|&m| m < asm.max_seen);
                let timed_out = now.saturating_since(asm.first_arrival) >= timeout;
                if gap || timed_out {
                    Some(IncompleteFrame {
                        header: asm.header,
                        substream: asm.substream,
                        missing,
                        expected: asm.expected,
                        out_of_order_gap: gap,
                        first_arrival: asm.first_arrival,
                    })
                } else {
                    None
                }
            })
            .collect()
    }

    /// Frames that embedded chains have announced but for which no data
    /// has arrived at all within `timeout` — e.g. the publishing relay
    /// died. Returns `(dts, packet_count)` pairs; the caller recovers
    /// them as whole frames (the CDN supports dts-indexed recovery, §6).
    pub fn missing_chain_frames(&self, now: SimTime, timeout: SimDuration) -> Vec<(u64, u32)> {
        self.chain_announced
            .iter()
            .filter(|&(dts, &(seen, _))| {
                now.saturating_since(seen) >= timeout
                    && !self.assembling.contains_key(dts)
                    && !self.complete.contains_key(dts)
                    && self.released_watermark.map(|w| dts > w).unwrap_or(true)
            })
            .map(|(dts, &(_, cnt))| (dts, cnt))
            .collect()
    }

    /// Ingests a retransmitted packet (same path as a normal packet).
    pub fn ingest_retransmission(&mut self, now: SimTime, pkt: &DataPacket) -> Vec<ReadyFrame> {
        self.ingest(now, pkt)
    }

    /// Frames sitting complete but blocked on chain order.
    pub fn blocked_complete(&self) -> usize {
        self.complete.len()
    }

    /// The dts values of complete frames that cannot release because no
    /// ordering information covers them — the failure mode of the
    /// centralised sequencing design when the metadata channel lags or
    /// loses entries (§7.3.2). Returns up to `limit` frames that have
    /// been complete for at least `age`.
    pub fn unorderable_complete(&self, now: SimTime, age: SimDuration, limit: usize) -> Vec<u64> {
        self.complete
            .iter()
            .filter(|&(dts, r)| {
                now.saturating_since(r.completed_at) >= age && self.chain.status_of(dts).is_none()
            })
            .map(|(dts, _)| dts)
            .take(limit)
            .collect()
    }

    /// Frames still assembling.
    pub fn assembling_count(&self) -> usize {
        self.assembling.len()
    }

    /// Duplicate packets observed.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Total packets ingested.
    pub fn packet_count(&self) -> u64 {
        self.packets
    }

    /// Drops per-frame state older than `horizon_ms` behind the newest
    /// frame (stale frames whose playout deadline passed). Dropped
    /// entries are counted in the rings' eviction statistics.
    pub fn expire_before(&mut self, dts_floor: u64) {
        self.assembling.evict_below(dts_floor);
        self.complete.evict_below(dts_floor);
        self.chain_announced.evict_below(dts_floor);
    }

    /// Total ring evictions so far (deadline expiry across the
    /// assembling/complete/announced rings) — the explicit eviction
    /// accounting the flat layout carries that the old maps did not.
    pub fn evicted_frames(&self) -> u64 {
        self.assembling.evicted() + self.complete.evicted() + self.chain_announced.evicted()
    }
}

/// Default CDN-fallback threshold (§7.4: 400 ms balances latency and
/// smoothness; 300 ms degrades sharply, 500 ms adds latency for little
/// gain).
pub const DEFAULT_FALLBACK_THRESHOLD: SimDuration = SimDuration::from_millis(400);

/// The player-side buffer of decoded-order frames.
#[derive(Debug)]
pub struct PlaybackBuffer {
    /// Buffered frames, ring-indexed by dts.
    frames: SeqRing<FrameHeader>,
    /// Next dts expected by the decoder.
    playhead_dts: Option<u64>,
    /// Occupancy threshold below which the client falls back to CDN
    /// full-stream pull.
    fallback_threshold: SimDuration,
    /// Frame interval, to convert frame count to buffered duration.
    frame_interval: SimDuration,
    /// Rebuffering statistics.
    rebuffer_events: u64,
    rebuffer_duration: SimDuration,
    stalled_since: Option<SimTime>,
    started: bool,
}

impl PlaybackBuffer {
    /// Creates a buffer for a stream with the given frame interval.
    pub fn new(frame_interval: SimDuration, fallback_threshold: SimDuration) -> Self {
        PlaybackBuffer {
            frames: SeqRing::new(),
            playhead_dts: None,
            fallback_threshold,
            frame_interval,
            rebuffer_events: 0,
            rebuffer_duration: SimDuration::ZERO,
            stalled_since: None,
            started: false,
        }
    }

    /// Inserts a frame delivered in decode order. Frames at or behind
    /// the playhead arrive too late to present and are dropped.
    pub fn push(&mut self, header: FrameHeader) {
        if self
            .playhead_dts
            .map(|p| header.dts_ms <= p)
            .unwrap_or(false)
        {
            return;
        }
        self.frames.insert(header.dts_ms, header);
    }

    /// Buffered playable duration from the playhead.
    pub fn occupancy(&self) -> SimDuration {
        self.frame_interval.saturating_mul(self.frames.len() as u64)
    }

    /// Whether occupancy has fallen below the fallback threshold.
    pub fn below_fallback_threshold(&self) -> bool {
        self.started && self.occupancy() < self.fallback_threshold
    }

    /// The fallback threshold.
    pub fn fallback_threshold(&self) -> SimDuration {
        self.fallback_threshold
    }

    /// Marks playback as started (initial buffer filled).
    pub fn start(&mut self) {
        self.started = true;
    }

    /// Whether playback has started.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Advances playback by one frame tick at `now`. Returns the frame
    /// consumed, or `None` on a stall (rebuffering).
    pub fn tick(&mut self, now: SimTime) -> Option<FrameHeader> {
        if !self.started {
            return None;
        }
        let next = match self.playhead_dts {
            None => self.frames.first_key(),
            Some(last) => self.frames.next_after(last),
        };
        match next {
            Some(dts) => {
                if let Some(since) = self.stalled_since.take() {
                    self.rebuffer_duration += now.saturating_since(since);
                }
                let header = self.frames.remove(dts).expect("key just observed");
                // Drop anything older than the playhead (late arrivals).
                self.frames.evict_below(dts);
                self.playhead_dts = Some(dts);
                Some(header)
            }
            None => {
                if self.stalled_since.is_none() {
                    self.stalled_since = Some(now);
                    self.rebuffer_events += 1;
                }
                None
            }
        }
    }

    /// Catch-up: drops the oldest buffered frame without presenting it
    /// (fast-play when the buffer is over-full, pulling end-to-end
    /// latency back down). Returns the dropped frame.
    pub fn drop_oldest(&mut self) -> Option<FrameHeader> {
        let next = match self.playhead_dts {
            None => self.frames.first_key(),
            Some(last) => self.frames.next_after(last),
        }?;
        let header = self.frames.remove(next);
        self.playhead_dts = Some(next);
        header
    }

    /// Number of rebuffering events so far.
    pub fn rebuffer_events(&self) -> u64 {
        self.rebuffer_events
    }

    /// Total stalled duration so far.
    pub fn rebuffer_duration(&self) -> SimDuration {
        self.rebuffer_duration
    }

    /// The dts at the playhead, if playback has consumed anything.
    pub fn playhead(&self) -> Option<u64> {
        self.playhead_dts
    }

    /// Number of buffered frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the buffer holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlive_media::footprint::ChainGenerator;
    use rlive_media::frame::Frame;
    use rlive_media::gop::{GopConfig, GopGenerator};
    use rlive_media::packet::{packetize, DataPacket, PACKET_PAYLOAD};
    use rlive_media::substream::substream_of;
    use rlive_sim::SimRng;

    fn make_packets(n: usize) -> Vec<Vec<DataPacket>> {
        let mut g = GopGenerator::new(5, GopConfig::default(), SimRng::new(21));
        let frames: Vec<Frame> = g.take_frames(n);
        let mut cg = ChainGenerator::new(PACKET_PAYLOAD);
        frames
            .iter()
            .map(|f| {
                let chain = cg.observe(&f.header);
                let ss = substream_of(&f.header, 4).0;
                packetize(f, ss, &chain, 1)
            })
            .collect()
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn in_order_delivery_releases_everything() {
        let pkts = make_packets(10);
        let mut rb = ReorderBuffer::new();
        let mut released = Vec::new();
        for (i, frame_pkts) in pkts.iter().enumerate() {
            for p in frame_pkts {
                released.extend(rb.ingest(t(i as u64 * 33), p));
            }
        }
        assert_eq!(released.len(), 10);
        // Released in dts order.
        for w in released.windows(2) {
            assert!(w[0].header.dts_ms < w[1].header.dts_ms);
        }
        assert_eq!(rb.assembling_count(), 0);
        assert_eq!(rb.blocked_complete(), 0);
    }

    #[test]
    fn out_of_order_frames_block_until_gap_fills() {
        let pkts = make_packets(3);
        let mut rb = ReorderBuffer::new();
        // Frame 0 complete.
        let mut released = Vec::new();
        for p in &pkts[0] {
            released.extend(rb.ingest(t(0), p));
        }
        assert_eq!(released.len(), 1);
        // Frame 2 arrives before frame 1: blocked.
        let mut r2 = Vec::new();
        for p in &pkts[2] {
            r2.extend(rb.ingest(t(70), p));
        }
        assert!(r2.is_empty(), "frame 2 must wait for frame 1");
        assert_eq!(rb.blocked_complete(), 1);
        // Frame 1 arrives: both release in order.
        let mut r1 = Vec::new();
        for p in &pkts[1] {
            r1.extend(rb.ingest(t(100), p));
        }
        assert_eq!(r1.len(), 2);
        assert!(r1[0].header.dts_ms < r1[1].header.dts_ms);
    }

    #[test]
    fn missing_packet_blocks_frame_and_reports_incomplete() {
        let pkts = make_packets(1);
        let frame_pkts = &pkts[0];
        assert!(frame_pkts.len() >= 2, "need a multi-packet frame");
        let mut rb = ReorderBuffer::new();
        // Deliver all but packet 0 (a gap, since higher indices arrive).
        for p in &frame_pkts[1..] {
            assert!(rb.ingest(t(1), p).is_empty());
        }
        let incomplete = rb.incomplete_frames(t(2), SimDuration::from_millis(100));
        assert_eq!(incomplete.len(), 1);
        assert_eq!(incomplete[0].missing, vec![0]);
        assert!(incomplete[0].out_of_order_gap);
        // Retransmission completes the frame.
        let released = rb.ingest_retransmission(t(5), &frame_pkts[0]);
        assert_eq!(released.len(), 1);
    }

    #[test]
    fn tail_loss_detected_by_timeout_only() {
        let pkts = make_packets(1);
        let frame_pkts = &pkts[0];
        let mut rb = ReorderBuffer::new();
        // Deliver all but the last packet: no gap (missing index is the
        // highest), so only the timeout path reports it.
        let n = frame_pkts.len();
        for p in &frame_pkts[..n - 1] {
            rb.ingest(t(1), p);
        }
        let early = rb.incomplete_frames(t(5), SimDuration::from_millis(100));
        assert!(early.is_empty(), "no gap and no timeout yet");
        let late = rb.incomplete_frames(t(200), SimDuration::from_millis(100));
        assert_eq!(late.len(), 1);
        assert!(!late[0].out_of_order_gap);
    }

    #[test]
    fn duplicates_counted_not_doubled() {
        let pkts = make_packets(1);
        let mut rb = ReorderBuffer::new();
        for p in &pkts[0] {
            rb.ingest(t(0), p);
        }
        let before = rb.packet_count();
        rb.ingest(t(1), &pkts[0][0]);
        assert_eq!(rb.duplicate_count(), 1);
        assert_eq!(rb.packet_count(), before + 1);
    }

    #[test]
    fn whole_frame_recovery_path() {
        let pkts = make_packets(3);
        let mut rb = ReorderBuffer::new();
        for p in &pkts[0] {
            rb.ingest(t(0), p);
        }
        // Frame 1 lost entirely; frame 2 arrives.
        for p in &pkts[2] {
            rb.ingest(t(70), p);
        }
        // Dedicated node returns the whole frame 1.
        let released = rb.ingest_whole_frame(t(90), pkts[1][0].frame);
        assert_eq!(released.len(), 2);
    }

    #[test]
    fn expire_drops_stale_state() {
        let pkts = make_packets(5);
        let mut rb = ReorderBuffer::new();
        // Partially deliver everything.
        for frame_pkts in &pkts {
            rb.ingest(t(0), &frame_pkts[0]);
        }
        let assembling_before = rb.assembling_count();
        assert!(
            assembling_before >= 4,
            "multi-packet frames still assembling"
        );
        rb.expire_before(pkts[4][0].frame.dts_ms);
        assert!(rb.assembling_count() <= 1);
    }

    #[test]
    fn playback_buffer_counts_rebuffers() {
        let interval = SimDuration::from_millis(33);
        let mut pb = PlaybackBuffer::new(interval, DEFAULT_FALLBACK_THRESHOLD);
        let pkts = make_packets(3);
        pb.push(pkts[0][0].frame);
        pb.push(pkts[1][0].frame);
        pb.start();
        assert!(pb.tick(t(0)).is_some());
        assert!(pb.tick(t(33)).is_some());
        // Buffer empty: stall begins.
        assert!(pb.tick(t(66)).is_none());
        assert_eq!(pb.rebuffer_events(), 1);
        // Still stalled; no double-count.
        assert!(pb.tick(t(99)).is_none());
        assert_eq!(pb.rebuffer_events(), 1);
        // Data arrives; stall ends and duration accrues.
        pb.push(pkts[2][0].frame);
        assert!(pb.tick(t(150)).is_some());
        assert_eq!(pb.rebuffer_duration(), SimDuration::from_millis(84));
    }

    #[test]
    fn fallback_threshold_trips() {
        let interval = SimDuration::from_millis(33);
        let mut pb = PlaybackBuffer::new(interval, SimDuration::from_millis(400));
        let pkts = make_packets(20);
        for fp in pkts.iter().take(15) {
            pb.push(fp[0].frame);
        }
        pb.start();
        // 15 frames * 33ms = 495ms > 400ms.
        assert!(!pb.below_fallback_threshold());
        for i in 0..4 {
            pb.tick(t(i * 33));
        }
        // 11 frames * 33ms = 363ms < 400ms.
        assert!(pb.below_fallback_threshold());
    }

    #[test]
    fn late_frames_dropped_at_playhead() {
        let interval = SimDuration::from_millis(33);
        let mut pb = PlaybackBuffer::new(interval, DEFAULT_FALLBACK_THRESHOLD);
        let pkts = make_packets(3);
        pb.push(pkts[2][0].frame);
        pb.start();
        assert_eq!(
            pb.tick(t(0)).map(|h| h.dts_ms),
            Some(pkts[2][0].frame.dts_ms)
        );
        // An older frame arriving now is behind the playhead; a tick
        // prunes it instead of playing it.
        pb.push(pkts[0][0].frame);
        assert!(pb.tick(t(33)).is_none());
        assert!(pb.is_empty());
    }

    #[test]
    fn no_ticks_before_start() {
        let mut pb = PlaybackBuffer::new(SimDuration::from_millis(33), DEFAULT_FALLBACK_THRESHOLD);
        let pkts = make_packets(1);
        pb.push(pkts[0][0].frame);
        assert!(pb.tick(t(0)).is_none());
        assert_eq!(pb.rebuffer_events(), 0);
    }
}
