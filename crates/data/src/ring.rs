//! `SeqRing<T>`: a sequence-indexed ring buffer replacing the
//! sequence-keyed `BTreeMap`s of the data plane.
//!
//! The data plane keys almost everything by a monotonically growing
//! `u64` sequence number (frame dts). A `BTreeMap` spends an allocation
//! per node and pointer-chases on every lookup; live sessions only ever
//! hold a *narrow, mostly-contiguous band* of sequences (the reorder
//! window), so a sorted circular buffer with binary-searched indexing
//! is strictly better: zero per-entry allocation in steady state (the
//! backing `VecDeque` reaches its high-water capacity once and is then
//! reused), O(log n) lookup, O(1) pop at the band's head, and amortised
//! O(1) insertion at the tail — the common case, since sequences mostly
//! arrive in order.
//!
//! Ordering is plain `u64` order, the same total order a `BTreeMap`
//! uses, so iteration is byte-identical to the map it replaces.
//! *Distances*, however, are computed wrap-safely (`wrapping_sub`), so
//! windowed eviction keeps working for sequences near `u64::MAX`.
//! Evictions — both window-forced and explicit (`evict_below`) — are
//! counted and queryable, never silent.

use std::collections::VecDeque;

/// A sorted, sequence-indexed circular buffer with an optional fixed
/// window by sequence distance and explicit eviction statistics.
///
/// # Examples
///
/// ```
/// use rlive_data::ring::SeqRing;
///
/// let mut ring: SeqRing<&str> = SeqRing::new();
/// ring.insert(20, "b");
/// ring.insert(10, "a");
/// ring.insert(30, "c");
/// assert_eq!(ring.get(20), Some(&"b"));
/// let keys: Vec<u64> = ring.keys().collect();
/// assert_eq!(keys, vec![10, 20, 30], "iteration in sequence order");
/// assert_eq!(ring.evict_below(25), 2);
/// assert_eq!(ring.evicted(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SeqRing<T> {
    /// Entries sorted ascending by sequence key.
    entries: VecDeque<(u64, T)>,
    /// Maximum backward sequence distance from the newest key;
    /// `None` = unbounded (pure `BTreeMap` replacement semantics).
    window: Option<u64>,
    /// Entries dropped by the window or `evict_below` so far.
    evicted: u64,
}

impl<T> Default for SeqRing<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SeqRing<T> {
    /// An unbounded ring: behaves exactly like a `BTreeMap<u64, T>`
    /// (same ordering, same replace-on-insert semantics).
    pub fn new() -> Self {
        SeqRing {
            entries: VecDeque::new(),
            window: None,
            evicted: 0,
        }
    }

    /// A ring bounded to `window` of backward sequence distance: after
    /// every insert, entries more than `window` behind the newest key
    /// are evicted (and counted), and an insert arriving that far
    /// behind is itself rejected as evicted-on-arrival.
    pub fn with_window(window: u64) -> Self {
        SeqRing {
            entries: VecDeque::new(),
            window: Some(window.max(1)),
            evicted: 0,
        }
    }

    /// The configured window, if bounded.
    pub fn window(&self) -> Option<u64> {
        self.window
    }

    /// Entries evicted so far (window-forced plus `evict_below`).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Wrap-safe backward distance from `newest` to `key` (0 when `key`
    /// is at or ahead of `newest` in wrapping terms).
    fn distance_behind(newest: u64, key: u64) -> u64 {
        let d = newest.wrapping_sub(key);
        // A "distance" above half the space means key is ahead of
        // newest modulo 2^64 — not behind at all.
        if d > u64::MAX / 2 {
            0
        } else {
            d
        }
    }

    /// Binary search: `Ok(i)` when `key` sits at index `i`, `Err(i)`
    /// with its insertion point otherwise.
    fn search(&self, key: u64) -> Result<usize, usize> {
        let i = self.entries.partition_point(|&(k, _)| k < key);
        if self.entries.get(i).map(|&(k, _)| k) == Some(key) {
            Ok(i)
        } else {
            Err(i)
        }
    }

    /// Reads the value at `key`.
    pub fn get(&self, key: u64) -> Option<&T> {
        self.search(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value at `key`.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        match self.search(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.search(key).is_ok()
    }

    /// Inserts `value` at `key`, returning the replaced value if the
    /// key was present (identical to `BTreeMap::insert`). Under a
    /// window, an insert too far behind the newest key is dropped and
    /// counted as an eviction; `None` is returned.
    pub fn insert(&mut self, key: u64, value: T) -> Option<T> {
        if let (Some(w), Some(&(newest, _))) = (self.window, self.entries.back()) {
            if Self::distance_behind(newest, key) >= w {
                self.evicted += 1;
                return None;
            }
        }
        let replaced = match self.search(key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        };
        self.enforce_window();
        replaced
    }

    /// Returns a mutable reference to the value at `key`, inserting
    /// `make()` first if absent (the `entry().or_insert_with()` shape).
    /// Under a window, a too-old key still gets a transient slot — the
    /// caller needs *some* value — but the window sweep reclaims it on
    /// the next in-window insert.
    pub fn get_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> T) -> &mut T {
        let i = match self.search(key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, make()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        match self.search(key) {
            Ok(i) => self.entries.remove(i).map(|(_, v)| v),
            Err(_) => None,
        }
    }

    /// Removes and returns the smallest-keyed entry.
    pub fn pop_first(&mut self) -> Option<(u64, T)> {
        self.entries.pop_front()
    }

    /// The smallest key, if any.
    pub fn first_key(&self) -> Option<u64> {
        self.entries.front().map(|&(k, _)| k)
    }

    /// The largest key, if any.
    pub fn last_key(&self) -> Option<u64> {
        self.entries.back().map(|&(k, _)| k)
    }

    /// The smallest key strictly greater than `key` (the
    /// `range(key+1..).next()` shape).
    pub fn next_after(&self, key: u64) -> Option<u64> {
        let i = self.entries.partition_point(|&(k, _)| k <= key);
        self.entries.get(i).map(|&(k, _)| k)
    }

    /// Iterates `(key, &value)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> + '_ {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|&(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Keeps only entries for which `keep` returns true (not counted as
    /// evictions: `retain` is semantic filtering, not capacity
    /// pressure).
    pub fn retain(&mut self, mut keep: impl FnMut(u64, &mut T) -> bool) {
        self.entries.retain_mut(|(k, v)| keep(*k, v));
    }

    /// Evicts every entry with key `< floor`; returns how many were
    /// dropped and adds them to the eviction counter.
    pub fn evict_below(&mut self, floor: u64) -> usize {
        let cut = self.entries.partition_point(|&(k, _)| k < floor);
        for _ in 0..cut {
            self.entries.pop_front();
        }
        self.evicted += cut as u64;
        cut
    }

    /// Window sweep: drops entries too far behind the newest key.
    fn enforce_window(&mut self) {
        let (Some(w), Some(&(newest, _))) = (self.window, self.entries.back()) else {
            return;
        };
        while let Some(&(oldest, _)) = self.entries.front() {
            if Self::distance_behind(newest, oldest) >= w {
                self.entries.pop_front();
                self.evicted += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_match_btreemap() {
        let keys = [50u64, 10, 30, 10, 90, 70, 30];
        let mut ring: SeqRing<u64> = SeqRing::new();
        let mut map: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(ring.insert(k, i as u64), map.insert(k, i as u64), "key {k}");
        }
        assert_eq!(ring.len(), map.len());
        for k in 0..100 {
            assert_eq!(ring.get(k), map.get(&k), "get {k}");
            assert_eq!(ring.contains_key(k), map.contains_key(&k));
        }
        let ring_keys: Vec<u64> = ring.keys().collect();
        let map_keys: Vec<u64> = map.keys().copied().collect();
        assert_eq!(ring_keys, map_keys, "identical iteration order");
        assert_eq!(ring.remove(30), map.remove(&30));
        assert_eq!(ring.remove(31), map.remove(&31));
        assert_eq!(ring.first_key(), map.keys().next().copied());
        assert_eq!(ring.last_key(), map.keys().next_back().copied());
    }

    #[test]
    fn next_after_matches_range_semantics() {
        let mut ring: SeqRing<()> = SeqRing::new();
        for k in [10u64, 20, 30] {
            ring.insert(k, ());
        }
        assert_eq!(ring.next_after(5), Some(10));
        assert_eq!(ring.next_after(10), Some(20));
        assert_eq!(ring.next_after(25), Some(30));
        assert_eq!(ring.next_after(30), None);
        assert_eq!(ring.next_after(u64::MAX), None);
    }

    #[test]
    fn get_or_insert_with_is_entry_or_insert() {
        let mut ring: SeqRing<Vec<u32>> = SeqRing::new();
        ring.get_or_insert_with(7, Vec::new).push(1);
        ring.get_or_insert_with(7, || panic!("must not rebuild"))
            .push(2);
        assert_eq!(ring.get(7), Some(&vec![1, 2]));
    }

    #[test]
    fn evict_below_counts_and_drops() {
        let mut ring: SeqRing<u32> = SeqRing::new();
        for k in 0..10u64 {
            ring.insert(k * 10, k as u32);
        }
        assert_eq!(ring.evict_below(35), 4);
        assert_eq!(ring.first_key(), Some(40));
        assert_eq!(ring.evicted(), 4);
        assert_eq!(ring.evict_below(0), 0);
        assert_eq!(ring.evicted(), 4);
    }

    #[test]
    fn retain_filters_without_counting_evictions() {
        let mut ring: SeqRing<u32> = SeqRing::new();
        for k in 0..6u64 {
            ring.insert(k, k as u32);
        }
        ring.retain(|k, _| k % 2 == 0);
        assert_eq!(ring.keys().collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(ring.evicted(), 0);
    }

    #[test]
    fn window_evicts_stragglers_and_rejects_ancient_inserts() {
        let mut ring: SeqRing<u32> = SeqRing::with_window(100);
        ring.insert(1000, 1);
        ring.insert(1060, 2);
        // Jump ahead: 1000 is now 150 behind — outside the window —
        // while 1060 is 90 behind and survives.
        ring.insert(1150, 3);
        assert_eq!(ring.keys().collect::<Vec<_>>(), vec![1060, 1150]);
        assert_eq!(ring.evicted(), 1);
        // An insert exactly the window distance behind is rejected.
        assert_eq!(ring.insert(1050, 9), None);
        assert!(!ring.contains_key(1050));
        assert_eq!(ring.evicted(), 2);
    }

    #[test]
    fn window_distance_is_wrap_safe_near_u64_max() {
        let near_max = u64::MAX - 10;
        let mut ring: SeqRing<u32> = SeqRing::with_window(100);
        ring.insert(near_max, 1);
        // The sequence wraps: 5 is 16 *ahead* of u64::MAX-10 in
        // wrapping terms, so it must neither evict nor be evicted.
        ring.insert(5, 2);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicted(), 0);
        // Plain ordering still governs iteration (BTreeMap-compatible).
        assert_eq!(ring.keys().collect::<Vec<_>>(), vec![5, near_max]);
    }

    #[test]
    fn pop_first_drains_in_order() {
        let mut ring: SeqRing<u32> = SeqRing::new();
        for k in [5u64, 3, 9] {
            ring.insert(k, k as u32);
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = ring.pop_first() {
            popped.push(k);
        }
        assert_eq!(popped, vec![3, 5, 9]);
        assert!(ring.is_empty());
    }
}
