//! NALU (Network Abstraction Layer Unit) header model.
//!
//! The CDN delivers streams as compressed NALUs encoded with H.264/AVC or
//! H.265/HEVC (§5.1); each encapsulates a complete frame or decodable
//! slice. RLive only inspects NALU headers (type and importance), never
//! payloads, so this module implements header parsing for both codecs
//! plus the classification the data plane needs (is this a keyframe-class
//! unit? is it parameter-set metadata that must never be dropped?).

use serde::{Deserialize, Serialize};

/// Codec family of a NALU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Codec {
    /// H.264 / AVC (1-byte NALU header).
    H264,
    /// H.265 / HEVC (2-byte NALU header).
    H265,
}

/// Coarse NALU classification used by the delivery path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NaluClass {
    /// IDR / CRA / BLA — random access points (I-frame class).
    Idr,
    /// Other coded slices (P/B class).
    Slice,
    /// SPS / PPS / VPS — parameter sets; tiny but mandatory.
    ParameterSet,
    /// SEI and other non-VCL metadata.
    Metadata,
    /// Anything unrecognised.
    Other,
}

/// A parsed NALU header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NaluHeader {
    /// Codec the header was parsed as.
    pub codec: Codec,
    /// Raw NALU type field.
    pub nal_type: u8,
    /// Classification.
    pub class: NaluClass,
}

/// Errors from NALU parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaluError {
    /// Input too short for the codec's header.
    Truncated,
    /// The forbidden-zero bit was set.
    ForbiddenBit,
}

impl std::fmt::Display for NaluError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NaluError::Truncated => write!(f, "truncated NALU header"),
            NaluError::ForbiddenBit => write!(f, "forbidden zero bit set"),
        }
    }
}

impl std::error::Error for NaluError {}

fn classify_h264(nal_type: u8) -> NaluClass {
    match nal_type {
        5 => NaluClass::Idr,
        1..=4 => NaluClass::Slice,
        7 | 8 => NaluClass::ParameterSet, // SPS, PPS
        6 => NaluClass::Metadata,         // SEI
        _ => NaluClass::Other,
    }
}

fn classify_h265(nal_type: u8) -> NaluClass {
    match nal_type {
        16..=21 => NaluClass::Idr, // BLA/IDR/CRA random-access pictures
        0..=15 => NaluClass::Slice,
        32..=34 => NaluClass::ParameterSet, // VPS, SPS, PPS
        39 | 40 => NaluClass::Metadata,     // prefix/suffix SEI
        _ => NaluClass::Other,
    }
}

/// Parses a NALU header from the first byte(s) of `data`.
pub fn parse(codec: Codec, data: &[u8]) -> Result<NaluHeader, NaluError> {
    match codec {
        Codec::H264 => {
            let b = *data.first().ok_or(NaluError::Truncated)?;
            if b & 0x80 != 0 {
                return Err(NaluError::ForbiddenBit);
            }
            let nal_type = b & 0x1F;
            Ok(NaluHeader {
                codec,
                nal_type,
                class: classify_h264(nal_type),
            })
        }
        Codec::H265 => {
            if data.len() < 2 {
                return Err(NaluError::Truncated);
            }
            if data[0] & 0x80 != 0 {
                return Err(NaluError::ForbiddenBit);
            }
            let nal_type = (data[0] >> 1) & 0x3F;
            Ok(NaluHeader {
                codec,
                nal_type,
                class: classify_h265(nal_type),
            })
        }
    }
}

/// Builds the first header byte(s) for a NALU of the given type, for use
/// by the synthetic stream generator.
pub fn encode(codec: Codec, nal_type: u8) -> Vec<u8> {
    match codec {
        Codec::H264 => vec![(3 << 5) | (nal_type & 0x1F)],
        Codec::H265 => vec![(nal_type & 0x3F) << 1, 1],
    }
}

impl NaluClass {
    /// Whether losing this unit stalls decode of dependent frames.
    pub fn is_critical(self) -> bool {
        matches!(self, NaluClass::Idr | NaluClass::ParameterSet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h264_idr_detection() {
        let h = parse(Codec::H264, &encode(Codec::H264, 5)).expect("parses");
        assert_eq!(h.class, NaluClass::Idr);
        assert!(h.class.is_critical());
    }

    #[test]
    fn h264_types() {
        assert_eq!(
            parse(Codec::H264, &encode(Codec::H264, 1)).unwrap().class,
            NaluClass::Slice
        );
        assert_eq!(
            parse(Codec::H264, &encode(Codec::H264, 7)).unwrap().class,
            NaluClass::ParameterSet
        );
        assert_eq!(
            parse(Codec::H264, &encode(Codec::H264, 6)).unwrap().class,
            NaluClass::Metadata
        );
        assert_eq!(
            parse(Codec::H264, &encode(Codec::H264, 12)).unwrap().class,
            NaluClass::Other
        );
    }

    #[test]
    fn h265_types() {
        assert_eq!(
            parse(Codec::H265, &encode(Codec::H265, 19)).unwrap().class,
            NaluClass::Idr
        );
        assert_eq!(
            parse(Codec::H265, &encode(Codec::H265, 1)).unwrap().class,
            NaluClass::Slice
        );
        assert_eq!(
            parse(Codec::H265, &encode(Codec::H265, 33)).unwrap().class,
            NaluClass::ParameterSet
        );
        assert_eq!(
            parse(Codec::H265, &encode(Codec::H265, 39)).unwrap().class,
            NaluClass::Metadata
        );
    }

    #[test]
    fn forbidden_bit_rejected() {
        assert_eq!(parse(Codec::H264, &[0x85]), Err(NaluError::ForbiddenBit));
        assert_eq!(
            parse(Codec::H265, &[0x80, 0x01]),
            Err(NaluError::ForbiddenBit)
        );
    }

    #[test]
    fn truncation_rejected() {
        assert_eq!(parse(Codec::H264, &[]), Err(NaluError::Truncated));
        assert_eq!(parse(Codec::H265, &[0x02]), Err(NaluError::Truncated));
    }

    #[test]
    fn round_trip_types() {
        for t in 0..32u8 {
            let h = parse(Codec::H264, &encode(Codec::H264, t)).unwrap();
            assert_eq!(h.nal_type, t);
        }
        for t in 0..64u8 {
            let h = parse(Codec::H265, &encode(Codec::H265, t)).unwrap();
            assert_eq!(h.nal_type, t);
        }
    }
}
