//! Video frame model.
//!
//! For simplicity the paper refers to NALUs as frames; each carries a
//! decoding timestamp (dts), a type (I/P/B) and a payload. RLive's
//! sequencing and recovery logic works on frame *headers* only, so the
//! header is a first-class type.

use serde::{Deserialize, Serialize};

/// The compressed frame type, determining decode dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// Intra-coded: independently decodable; other frames reference it.
    I,
    /// Predicted: references prior frames.
    P,
    /// Bi-directionally predicted: references prior and later frames.
    B,
}

impl FrameType {
    /// Decode-loss risk weight used by the QoE-driven recovery loss
    /// function (§5.3): losing an I-frame stalls the whole GoP.
    pub fn risk_weight(self) -> f64 {
        match self {
            FrameType::I => 8.0,
            FrameType::P => 2.0,
            FrameType::B => 1.0,
        }
    }
}

/// The metadata portion of a frame; everything sequencing needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameHeader {
    /// Stream the frame belongs to.
    pub stream_id: u64,
    /// Decoding timestamp in milliseconds since stream start.
    pub dts_ms: u64,
    /// Frame type.
    pub frame_type: FrameType,
    /// Size of the compressed payload in bytes.
    pub size: u32,
}

impl FrameHeader {
    /// Serialises the header into a fixed 21-byte representation used for
    /// footprint CRCs and wire encoding.
    pub fn to_bytes(&self) -> [u8; 21] {
        let mut out = [0u8; 21];
        out[0..8].copy_from_slice(&self.stream_id.to_be_bytes());
        out[8..16].copy_from_slice(&self.dts_ms.to_be_bytes());
        out[16] = match self.frame_type {
            FrameType::I => 0,
            FrameType::P => 1,
            FrameType::B => 2,
        };
        out[17..21].copy_from_slice(&self.size.to_be_bytes());
        out
    }

    /// Parses a header previously produced by [`FrameHeader::to_bytes`].
    ///
    /// Returns `None` if the frame-type byte is invalid.
    pub fn from_bytes(bytes: &[u8; 21]) -> Option<Self> {
        let stream_id = u64::from_be_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let dts_ms = u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let frame_type = match bytes[16] {
            0 => FrameType::I,
            1 => FrameType::P,
            2 => FrameType::B,
            _ => return None,
        };
        let size = u32::from_be_bytes(bytes[17..21].try_into().expect("4 bytes"));
        Some(FrameHeader {
            stream_id,
            dts_ms,
            frame_type,
            size,
        })
    }
}

/// A complete frame: header plus (synthetic) payload length.
///
/// The simulator never materialises pixel data; the payload is
/// represented by its length only, which is what every delivery-path
/// computation (serialisation time, packet count, buffer occupancy)
/// consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Frame metadata.
    pub header: FrameHeader,
}

impl Frame {
    /// Creates a frame from its header.
    pub fn new(header: FrameHeader) -> Self {
        Frame { header }
    }

    /// Payload size in bytes.
    pub fn size(&self) -> u32 {
        self.header.size
    }

    /// Decoding timestamp in milliseconds.
    pub fn dts_ms(&self) -> u64 {
        self.header.dts_ms
    }

    /// Number of fixed-size packets needed to carry the payload.
    pub fn packet_count(&self, payload_per_packet: u32) -> u32 {
        self.header.size.div_ceil(payload_per_packet).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> FrameHeader {
        FrameHeader {
            stream_id: 7,
            dts_ms: 123_456,
            frame_type: FrameType::P,
            size: 14_000,
        }
    }

    #[test]
    fn header_round_trip() {
        let h = header();
        let bytes = h.to_bytes();
        assert_eq!(FrameHeader::from_bytes(&bytes), Some(h));
    }

    #[test]
    fn header_rejects_bad_type() {
        let mut bytes = header().to_bytes();
        bytes[16] = 9;
        assert_eq!(FrameHeader::from_bytes(&bytes), None);
    }

    #[test]
    fn packet_count_rounds_up() {
        let mut h = header();
        h.size = 1200;
        assert_eq!(Frame::new(h).packet_count(1200), 1);
        h.size = 1201;
        assert_eq!(Frame::new(h).packet_count(1200), 2);
        h.size = 0;
        assert_eq!(
            Frame::new(h).packet_count(1200),
            1,
            "empty frame still needs one packet"
        );
    }

    #[test]
    fn risk_ordering() {
        assert!(FrameType::I.risk_weight() > FrameType::P.risk_weight());
        assert!(FrameType::P.risk_weight() > FrameType::B.risk_weight());
    }
}
