//! FNV-1a hashing.
//!
//! §6 of the paper assigns frames to substreams with
//! `ssid(f) = Hash(dts(f)) mod K`, using FNV-1a specifically so that
//! consecutive large frames spread uniformly across substreams instead
//! of bursting onto one link.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Computes the 64-bit FNV-1a hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Computes the FNV-1a hash of a `u64` in little-endian byte order.
pub fn fnv1a_u64(value: u64) -> u64 {
    fnv1a(&value.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn u64_variant_matches_bytes() {
        assert_eq!(fnv1a_u64(0x0123_4567), fnv1a(&0x0123_4567u64.to_le_bytes()));
    }

    #[test]
    fn consecutive_dts_values_spread() {
        // The paper's rationale: consecutive dts values (e.g. 33ms apart)
        // must not map to the same bucket repeatedly.
        let k = 4;
        let mut counts = vec![0u32; k];
        for i in 0..10_000u64 {
            let dts = i * 33;
            counts[(fnv1a_u64(dts) % k as u64) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 10_000.0;
            assert!((frac - 0.25).abs() < 0.03, "bucket fraction {frac}");
        }
    }

    #[test]
    fn adjacent_frames_rarely_collide_in_long_runs() {
        // No run of >6 consecutive frames on the same substream for K=4.
        let k = 4u64;
        let mut run = 1;
        let mut max_run = 1;
        let mut prev = fnv1a_u64(0) % k;
        for i in 1..100_000u64 {
            let cur = fnv1a_u64(i * 33) % k;
            if cur == prev {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 1;
            }
            prev = cur;
        }
        assert!(max_run <= 8, "max same-substream run {max_run}");
    }
}
