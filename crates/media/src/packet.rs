//! Fixed-size packetisation and the data-packet wire format.
//!
//! Best-effort nodes segment each frame into fixed-size packets, embed
//! the local frame chain, and push them sequentially to subscribers over
//! UDP (§5.1). The packet also carries the publisher's IP so clients can
//! bypass DNS when recovering (§8.1, "Accelerating Frame Recovery via
//! DNS Bypass"); we model that as a 4-byte publisher id.

use crate::footprint::LocalChain;
use crate::frame::{Frame, FrameHeader};
use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Payload bytes carried per packet — 1200 B keeps packets under typical
/// path MTUs after UDP/IP headers.
pub const PACKET_PAYLOAD: u32 = 1200;

/// One data packet of a substream, as pushed by a best-effort node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPacket {
    /// Stream the packet belongs to.
    pub stream_id: u64,
    /// Substream within the stream.
    pub substream: u16,
    /// Header of the frame this packet carries a slice of.
    pub frame: FrameHeader,
    /// Index of this packet within the frame (`0..cnt`).
    pub packet_index: u32,
    /// Total packets in the frame.
    pub packet_count: u32,
    /// Bytes of payload in this packet.
    pub payload_len: u32,
    /// Local frame chain of the publishing node.
    pub chain: LocalChain,
    /// Identifier of the publishing node (stands in for the embedded
    /// publisher IP used for DNS bypass).
    pub publisher: u32,
}

impl DataPacket {
    /// Total wire size: header fields + chain + payload.
    pub fn wire_size(&self) -> usize {
        // stream_id(8) substream(2) frame header(21) idx(4) cnt(4)
        // payload_len(4) publisher(4) + chain + payload
        8 + 2 + 21 + 4 + 4 + 4 + 4 + self.chain.to_bytes().len() + self.payload_len as usize
    }

    /// Encodes the packet header + chain (payload bytes are synthetic and
    /// represented by `payload_len` zeros).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = BytesMut::with_capacity(self.wire_size());
        out.put_u64(self.stream_id);
        out.put_u16(self.substream);
        out.put_slice(&self.frame.to_bytes());
        out.put_u32(self.packet_index);
        out.put_u32(self.packet_count);
        out.put_u32(self.payload_len);
        out.put_u32(self.publisher);
        out.put_slice(&self.chain.to_bytes());
        out.resize(out.len() + self.payload_len as usize, 0);
        out.to_vec()
    }

    /// Decodes a packet produced by [`DataPacket::encode`].
    pub fn decode(bytes: &[u8]) -> Option<DataPacket> {
        const FIXED: usize = 8 + 2 + 21 + 4 + 4 + 4 + 4;
        if bytes.len() < FIXED + 1 {
            return None;
        }
        let stream_id = u64::from_be_bytes(bytes[0..8].try_into().ok()?);
        let substream = u16::from_be_bytes(bytes[8..10].try_into().ok()?);
        let frame_bytes: [u8; 21] = bytes[10..31].try_into().ok()?;
        let frame = FrameHeader::from_bytes(&frame_bytes)?;
        let packet_index = u32::from_be_bytes(bytes[31..35].try_into().ok()?);
        let packet_count = u32::from_be_bytes(bytes[35..39].try_into().ok()?);
        let payload_len = u32::from_be_bytes(bytes[39..43].try_into().ok()?);
        let publisher = u32::from_be_bytes(bytes[43..47].try_into().ok()?);
        let (chain, used) = LocalChain::from_bytes(&bytes[47..])?;
        if bytes.len() < 47 + used + payload_len as usize {
            return None;
        }
        Some(DataPacket {
            stream_id,
            substream,
            frame,
            packet_index,
            packet_count,
            payload_len,
            chain,
            publisher,
        })
    }
}

/// Splits a frame into data packets carrying the given chain.
pub fn packetize(
    frame: &Frame,
    substream: u16,
    chain: &LocalChain,
    publisher: u32,
) -> Vec<DataPacket> {
    let cnt = frame.packet_count(PACKET_PAYLOAD);
    let size = frame.size();
    (0..cnt)
        .map(|i| {
            let payload_len = if i + 1 == cnt {
                size - (cnt - 1) * PACKET_PAYLOAD.min(size)
            } else {
                PACKET_PAYLOAD
            };
            DataPacket {
                stream_id: frame.header.stream_id,
                substream,
                frame: frame.header,
                packet_index: i,
                packet_count: cnt,
                payload_len,
                chain: chain.clone(),
                publisher,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::ChainGenerator;
    use crate::frame::FrameType;

    fn frame(size: u32) -> Frame {
        Frame::new(FrameHeader {
            stream_id: 5,
            dts_ms: 99,
            frame_type: FrameType::P,
            size,
        })
    }

    fn chain_for(f: &Frame) -> LocalChain {
        let mut g = ChainGenerator::new(PACKET_PAYLOAD);
        g.observe(&f.header)
    }

    #[test]
    fn packetize_covers_frame() {
        let f = frame(3000);
        let pkts = packetize(&f, 2, &chain_for(&f), 1);
        assert_eq!(pkts.len(), 3);
        let total: u32 = pkts.iter().map(|p| p.payload_len).sum();
        assert_eq!(total, 3000);
        assert_eq!(pkts[0].payload_len, 1200);
        assert_eq!(pkts[2].payload_len, 600);
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.packet_index, i as u32);
            assert_eq!(p.packet_count, 3);
            assert_eq!(p.substream, 2);
        }
    }

    #[test]
    fn exact_multiple_has_full_last_packet() {
        let f = frame(2400);
        let pkts = packetize(&f, 0, &chain_for(&f), 1);
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[1].payload_len, 1200);
    }

    #[test]
    fn tiny_frame_single_packet() {
        let f = frame(100);
        let pkts = packetize(&f, 0, &chain_for(&f), 1);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload_len, 100);
    }

    #[test]
    fn wire_round_trip() {
        let f = frame(2500);
        let pkts = packetize(&f, 3, &chain_for(&f), 42);
        for p in &pkts {
            let bytes = p.encode();
            assert_eq!(bytes.len(), p.wire_size());
            assert_eq!(DataPacket::decode(&bytes), Some(p.clone()));
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let f = frame(500);
        let p = &packetize(&f, 0, &chain_for(&f), 1)[0];
        let bytes = p.encode();
        assert_eq!(DataPacket::decode(&bytes[..20]), None);
        assert_eq!(DataPacket::decode(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn chain_overhead_is_small() {
        // The paper stresses lightweight metadata: with δ=4 the chain
        // adds 65 bytes to a 1200-byte payload — ~5% overhead.
        let f = frame(1200);
        let p = &packetize(&f, 0, &chain_for(&f), 1)[0];
        let overhead = p.wire_size() - p.payload_len as usize;
        assert!(overhead < 120, "overhead {overhead}");
    }
}
