//! Byte-level FLV container codec.
//!
//! FLV is RLive's primary CDN-to-edge protocol (§7.4). The format has a
//! 9-byte file header followed by back-pointer-delimited tags; each tag
//! carries a type (audio/video/script), a 24-bit payload size, and a
//! 24+8-bit timestamp. This module implements the subset needed for the
//! delivery path: encoding frames into video tags and parsing tag streams
//! back into headers — including the paper's observation that FLV carries
//! *no frame sequence identifier*, which is what forces the distributed
//! frame-chain design (§2.4, challenge 2).

use crate::frame::{FrameHeader, FrameType};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// FLV tag types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagType {
    /// Audio payload.
    Audio,
    /// Video payload.
    Video,
    /// Script data (onMetaData etc.).
    Script,
}

impl TagType {
    fn to_byte(self) -> u8 {
        match self {
            TagType::Audio => 8,
            TagType::Video => 9,
            TagType::Script => 18,
        }
    }

    fn from_byte(b: u8) -> Option<TagType> {
        match b {
            8 => Some(TagType::Audio),
            9 => Some(TagType::Video),
            18 => Some(TagType::Script),
            _ => None,
        }
    }
}

/// A decoded FLV tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tag {
    /// Tag type.
    pub tag_type: TagType,
    /// Timestamp in milliseconds (32-bit, reassembled from 24+8 bits).
    pub timestamp_ms: u32,
    /// Tag payload.
    pub payload: Bytes,
}

/// Errors from FLV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlvError {
    /// The 9-byte file header was malformed.
    BadFileHeader,
    /// A tag header declared an unknown type.
    BadTagType(u8),
    /// The buffer ended mid-structure.
    Truncated,
    /// A back-pointer did not match the preceding tag size.
    BadBackPointer {
        /// Value found on the wire.
        found: u32,
        /// Value implied by the preceding tag.
        expected: u32,
    },
}

impl std::fmt::Display for FlvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlvError::BadFileHeader => write!(f, "malformed FLV file header"),
            FlvError::BadTagType(t) => write!(f, "unknown FLV tag type {t}"),
            FlvError::Truncated => write!(f, "truncated FLV data"),
            FlvError::BadBackPointer { found, expected } => {
                write!(f, "bad back pointer: found {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for FlvError {}

/// Writes the 9-byte FLV file header (signature "FLV", version 1,
/// video-only flag) plus the initial zero back-pointer.
pub fn encode_file_header(out: &mut BytesMut) {
    out.put_slice(b"FLV");
    out.put_u8(1);
    out.put_u8(0x01); // video only
    out.put_u32(9); // data offset
    out.put_u32(0); // PreviousTagSize0
}

/// Parses and validates the file header, returning the bytes consumed.
pub fn decode_file_header(buf: &[u8]) -> Result<usize, FlvError> {
    if buf.len() < 13 {
        return Err(FlvError::Truncated);
    }
    if &buf[0..3] != b"FLV" || buf[3] != 1 {
        return Err(FlvError::BadFileHeader);
    }
    let offset = u32::from_be_bytes(buf[5..9].try_into().expect("4 bytes")) as usize;
    if offset != 9 {
        return Err(FlvError::BadFileHeader);
    }
    let ptr0 = u32::from_be_bytes(buf[9..13].try_into().expect("4 bytes"));
    if ptr0 != 0 {
        return Err(FlvError::BadBackPointer {
            found: ptr0,
            expected: 0,
        });
    }
    Ok(13)
}

/// Encodes one tag (11-byte header, payload, 4-byte back pointer).
pub fn encode_tag(out: &mut BytesMut, tag: &Tag) {
    let size = tag.payload.len() as u32;
    out.put_u8(tag.tag_type.to_byte());
    out.put_u8(((size >> 16) & 0xFF) as u8);
    out.put_u8(((size >> 8) & 0xFF) as u8);
    out.put_u8((size & 0xFF) as u8);
    // Timestamp: lower 24 bits, then the extension byte holds bits 24-31.
    out.put_u8(((tag.timestamp_ms >> 16) & 0xFF) as u8);
    out.put_u8(((tag.timestamp_ms >> 8) & 0xFF) as u8);
    out.put_u8((tag.timestamp_ms & 0xFF) as u8);
    out.put_u8(((tag.timestamp_ms >> 24) & 0xFF) as u8);
    out.put_slice(&[0, 0, 0]); // stream id, always 0
    out.put_slice(&tag.payload);
    out.put_u32(11 + size);
}

/// Decodes one tag from the front of `buf`, returning it and the bytes
/// consumed (including the trailing back pointer).
pub fn decode_tag(buf: &[u8]) -> Result<(Tag, usize), FlvError> {
    if buf.len() < 11 {
        return Err(FlvError::Truncated);
    }
    let tag_type = TagType::from_byte(buf[0]).ok_or(FlvError::BadTagType(buf[0]))?;
    let size = ((buf[1] as u32) << 16) | ((buf[2] as u32) << 8) | buf[3] as u32;
    let ts_low = ((buf[4] as u32) << 16) | ((buf[5] as u32) << 8) | buf[6] as u32;
    let ts_ext = buf[7] as u32;
    let timestamp_ms = (ts_ext << 24) | ts_low;
    let total = 11 + size as usize + 4;
    if buf.len() < total {
        return Err(FlvError::Truncated);
    }
    let payload = Bytes::copy_from_slice(&buf[11..11 + size as usize]);
    let back = u32::from_be_bytes(buf[11 + size as usize..total].try_into().expect("4 bytes"));
    if back != 11 + size {
        return Err(FlvError::BadBackPointer {
            found: back,
            expected: 11 + size,
        });
    }
    Ok((
        Tag {
            tag_type,
            timestamp_ms,
            payload,
        },
        total,
    ))
}

/// Encodes a frame header as the payload of a video tag.
///
/// The first payload byte mimics FLV's video-data byte: the upper nibble
/// is the frame flavour (1 = keyframe, 2 = inter), the lower nibble the
/// codec id (7 = AVC). The remaining bytes carry the 21-byte frame
/// header so the relay can reconstruct it without the full stream.
pub fn encode_frame_tag(header: &FrameHeader) -> Tag {
    let mut payload = BytesMut::with_capacity(1 + 21);
    let flavour = match header.frame_type {
        FrameType::I => 1u8,
        FrameType::P | FrameType::B => 2u8,
    };
    payload.put_u8((flavour << 4) | 7);
    payload.put_slice(&header.to_bytes());
    Tag {
        tag_type: TagType::Video,
        timestamp_ms: header.dts_ms as u32,
        payload: payload.freeze(),
    }
}

/// Recovers a frame header from a video tag produced by
/// [`encode_frame_tag`].
pub fn decode_frame_tag(tag: &Tag) -> Result<FrameHeader, FlvError> {
    if tag.tag_type != TagType::Video || tag.payload.len() < 22 {
        return Err(FlvError::Truncated);
    }
    let mut bytes = [0u8; 21];
    let mut payload = tag.payload.clone();
    payload.advance(1);
    payload.copy_to_slice(&mut bytes);
    FrameHeader::from_bytes(&bytes).ok_or(FlvError::Truncated)
}

/// Parses a full FLV byte stream into tags.
pub fn decode_stream(buf: &[u8]) -> Result<Vec<Tag>, FlvError> {
    let mut pos = decode_file_header(buf)?;
    let mut tags = Vec::new();
    while pos < buf.len() {
        let (tag, used) = decode_tag(&buf[pos..])?;
        tags.push(tag);
        pos += used;
    }
    Ok(tags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header(dts: u64) -> FrameHeader {
        FrameHeader {
            stream_id: 42,
            dts_ms: dts,
            frame_type: if dts.is_multiple_of(2000) {
                FrameType::I
            } else {
                FrameType::P
            },
            size: 9_000,
        }
    }

    #[test]
    fn tag_round_trip() {
        let tag = Tag {
            tag_type: TagType::Video,
            timestamp_ms: 0x0123_4567,
            payload: Bytes::from_static(b"hello world"),
        };
        let mut out = BytesMut::new();
        encode_tag(&mut out, &tag);
        let (decoded, used) = decode_tag(&out).expect("decodes");
        assert_eq!(decoded, tag);
        assert_eq!(used, out.len());
    }

    #[test]
    fn extended_timestamp_bits_survive() {
        // Timestamps beyond 24 bits use the extension byte.
        let tag = Tag {
            tag_type: TagType::Video,
            timestamp_ms: 0xFF00_0001,
            payload: Bytes::new(),
        };
        let mut out = BytesMut::new();
        encode_tag(&mut out, &tag);
        let (decoded, _) = decode_tag(&out).expect("decodes");
        assert_eq!(decoded.timestamp_ms, 0xFF00_0001);
    }

    #[test]
    fn file_header_round_trip() {
        let mut out = BytesMut::new();
        encode_file_header(&mut out);
        assert_eq!(decode_file_header(&out), Ok(13));
    }

    #[test]
    fn file_header_rejects_garbage() {
        assert_eq!(
            decode_file_header(b"GIF89a..............."),
            Err(FlvError::BadFileHeader)
        );
        assert_eq!(decode_file_header(b"FLV"), Err(FlvError::Truncated));
    }

    #[test]
    fn bad_back_pointer_detected() {
        let tag = Tag {
            tag_type: TagType::Audio,
            timestamp_ms: 1,
            payload: Bytes::from_static(b"xy"),
        };
        let mut out = BytesMut::new();
        encode_tag(&mut out, &tag);
        let n = out.len();
        out[n - 1] ^= 0xFF;
        assert!(matches!(
            decode_tag(&out),
            Err(FlvError::BadBackPointer { .. })
        ));
    }

    #[test]
    fn unknown_tag_type_rejected() {
        let mut out = BytesMut::new();
        encode_tag(
            &mut out,
            &Tag {
                tag_type: TagType::Video,
                timestamp_ms: 0,
                payload: Bytes::new(),
            },
        );
        out[0] = 77;
        assert_eq!(decode_tag(&out), Err(FlvError::BadTagType(77)));
    }

    #[test]
    fn frame_tag_round_trip() {
        let h = sample_header(4000);
        let tag = encode_frame_tag(&h);
        assert_eq!(decode_frame_tag(&tag), Ok(h));
        // Keyframe flavour bit set for I-frames.
        assert_eq!(tag.payload[0] >> 4, 1);
        let p = sample_header(4033);
        assert_eq!(encode_frame_tag(&p).payload[0] >> 4, 2);
    }

    #[test]
    fn stream_round_trip() {
        let mut out = BytesMut::new();
        encode_file_header(&mut out);
        let headers: Vec<FrameHeader> = (0..50).map(|i| sample_header(i * 33)).collect();
        for h in &headers {
            encode_tag(&mut out, &encode_frame_tag(h));
        }
        let tags = decode_stream(&out).expect("parses");
        assert_eq!(tags.len(), 50);
        for (tag, h) in tags.iter().zip(&headers) {
            assert_eq!(decode_frame_tag(tag), Ok(*h));
        }
    }

    #[test]
    fn truncation_mid_tag_detected() {
        let mut out = BytesMut::new();
        encode_file_header(&mut out);
        encode_tag(&mut out, &encode_frame_tag(&sample_header(0)));
        let cut = out.len() - 3;
        assert_eq!(decode_stream(&out[..cut]), Err(FlvError::Truncated));
    }
}
