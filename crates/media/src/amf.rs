//! Minimal AMF0 codec for FLV script data.
//!
//! FLV streams open with an `onMetaData` script tag carrying stream
//! properties (duration, width, height, frame rate, bitrates) encoded in
//! AMF0. RLive's relays forward these tags verbatim; the client player
//! reads frame rate and bitrate hints from them. This module implements
//! the AMF0 subset that real `onMetaData` payloads use: numbers,
//! booleans, strings, ECMA arrays, objects and null.

use std::collections::BTreeMap;

/// An AMF0 value.
#[derive(Debug, Clone, PartialEq)]
pub enum Amf0 {
    /// IEEE-754 double (AMF0 type 0).
    Number(f64),
    /// Boolean (type 1).
    Boolean(bool),
    /// UTF-8 string with 16-bit length (type 2).
    String(String),
    /// Anonymous object (type 3): ordered name → value pairs.
    Object(BTreeMap<String, Amf0>),
    /// Null (type 5).
    Null,
    /// ECMA array (type 8): like an object with a count hint.
    EcmaArray(BTreeMap<String, Amf0>),
}

/// Errors from AMF0 parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmfError {
    /// Input ended mid-value.
    Truncated,
    /// An unsupported or unknown type marker.
    UnsupportedMarker(u8),
    /// A string was not valid UTF-8.
    BadString,
}

impl std::fmt::Display for AmfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmfError::Truncated => write!(f, "truncated AMF0 data"),
            AmfError::UnsupportedMarker(m) => write!(f, "unsupported AMF0 marker {m}"),
            AmfError::BadString => write!(f, "invalid UTF-8 in AMF0 string"),
        }
    }
}

impl std::error::Error for AmfError {}

impl Amf0 {
    /// Encodes the value, appending to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Amf0::Number(n) => {
                out.push(0);
                out.extend_from_slice(&n.to_be_bytes());
            }
            Amf0::Boolean(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Amf0::String(s) => {
                out.push(2);
                encode_utf8(out, s);
            }
            Amf0::Object(map) => {
                out.push(3);
                encode_properties(out, map);
            }
            Amf0::Null => out.push(5),
            Amf0::EcmaArray(map) => {
                out.push(8);
                out.extend_from_slice(&(map.len() as u32).to_be_bytes());
                encode_properties(out, map);
            }
        }
    }

    /// Decodes one value from the front of `buf`, returning it and the
    /// bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Amf0, usize), AmfError> {
        let marker = *buf.first().ok_or(AmfError::Truncated)?;
        match marker {
            0 => {
                let raw = buf.get(1..9).ok_or(AmfError::Truncated)?;
                let n = f64::from_be_bytes(raw.try_into().expect("8 bytes"));
                Ok((Amf0::Number(n), 9))
            }
            1 => {
                let b = *buf.get(1).ok_or(AmfError::Truncated)?;
                Ok((Amf0::Boolean(b != 0), 2))
            }
            2 => {
                let (s, used) = decode_utf8(&buf[1..])?;
                Ok((Amf0::String(s), 1 + used))
            }
            3 => {
                let (map, used) = decode_properties(&buf[1..])?;
                Ok((Amf0::Object(map), 1 + used))
            }
            5 => Ok((Amf0::Null, 1)),
            8 => {
                if buf.len() < 5 {
                    return Err(AmfError::Truncated);
                }
                let (map, used) = decode_properties(&buf[5..])?;
                Ok((Amf0::EcmaArray(map), 5 + used))
            }
            m => Err(AmfError::UnsupportedMarker(m)),
        }
    }

    /// Convenience: reads a number property from an object/array value.
    pub fn get_number(&self, key: &str) -> Option<f64> {
        let map = match self {
            Amf0::Object(m) | Amf0::EcmaArray(m) => m,
            _ => return None,
        };
        match map.get(key) {
            Some(Amf0::Number(n)) => Some(*n),
            _ => None,
        }
    }
}

fn encode_utf8(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn decode_utf8(buf: &[u8]) -> Result<(String, usize), AmfError> {
    let len = u16::from_be_bytes(
        buf.get(0..2)
            .ok_or(AmfError::Truncated)?
            .try_into()
            .expect("2 bytes"),
    ) as usize;
    let raw = buf.get(2..2 + len).ok_or(AmfError::Truncated)?;
    let s = std::str::from_utf8(raw).map_err(|_| AmfError::BadString)?;
    Ok((s.to_owned(), 2 + len))
}

fn encode_properties(out: &mut Vec<u8>, map: &BTreeMap<String, Amf0>) {
    for (k, v) in map {
        encode_utf8(out, k);
        v.encode(out);
    }
    // Object end: empty name + marker 9.
    out.extend_from_slice(&[0, 0, 9]);
}

fn decode_properties(buf: &[u8]) -> Result<(BTreeMap<String, Amf0>, usize), AmfError> {
    let mut map = BTreeMap::new();
    let mut pos = 0;
    loop {
        let (name, used) = decode_utf8(&buf[pos..])?;
        pos += used;
        if name.is_empty() {
            let marker = *buf.get(pos).ok_or(AmfError::Truncated)?;
            if marker == 9 {
                return Ok((map, pos + 1));
            }
            return Err(AmfError::UnsupportedMarker(marker));
        }
        let (value, used) = Amf0::decode(&buf[pos..])?;
        pos += used;
        map.insert(name, value);
    }
}

/// Stream metadata carried by the `onMetaData` script tag.
#[derive(Debug, Clone, PartialEq)]
pub struct OnMetaData {
    /// Video width in pixels.
    pub width: f64,
    /// Video height in pixels.
    pub height: f64,
    /// Frames per second.
    pub framerate: f64,
    /// Video bitrate in kbps.
    pub videodatarate: f64,
}

impl OnMetaData {
    /// Encodes the full script-tag payload: the string `onMetaData`
    /// followed by an ECMA array of properties.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        Amf0::String("onMetaData".to_owned()).encode(&mut out);
        let mut map = BTreeMap::new();
        map.insert("width".to_owned(), Amf0::Number(self.width));
        map.insert("height".to_owned(), Amf0::Number(self.height));
        map.insert("framerate".to_owned(), Amf0::Number(self.framerate));
        map.insert("videodatarate".to_owned(), Amf0::Number(self.videodatarate));
        Amf0::EcmaArray(map).encode(&mut out);
        out
    }

    /// Parses a script-tag payload produced by [`OnMetaData::encode`]
    /// (or by a standard FLV muxer).
    pub fn decode(buf: &[u8]) -> Result<OnMetaData, AmfError> {
        let (name, used) = Amf0::decode(buf)?;
        if name != Amf0::String("onMetaData".to_owned()) {
            return Err(AmfError::UnsupportedMarker(0xFF));
        }
        let (props, _) = Amf0::decode(&buf[used..])?;
        Ok(OnMetaData {
            width: props.get_number("width").unwrap_or(0.0),
            height: props.get_number("height").unwrap_or(0.0),
            framerate: props.get_number("framerate").unwrap_or(0.0),
            videodatarate: props.get_number("videodatarate").unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Amf0) {
        let mut out = Vec::new();
        v.encode(&mut out);
        let (decoded, used) = Amf0::decode(&out).expect("decodes");
        assert_eq!(&decoded, v);
        assert_eq!(used, out.len());
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(&Amf0::Number(29.97));
        round_trip(&Amf0::Number(f64::MIN_POSITIVE));
        round_trip(&Amf0::Boolean(true));
        round_trip(&Amf0::Boolean(false));
        round_trip(&Amf0::String("hello".to_owned()));
        round_trip(&Amf0::String(String::new()));
        round_trip(&Amf0::Null);
    }

    #[test]
    fn object_round_trip() {
        let mut map = BTreeMap::new();
        map.insert("a".to_owned(), Amf0::Number(1.0));
        map.insert("b".to_owned(), Amf0::String("x".to_owned()));
        map.insert("c".to_owned(), Amf0::Boolean(true));
        round_trip(&Amf0::Object(map.clone()));
        round_trip(&Amf0::EcmaArray(map));
    }

    #[test]
    fn nested_object() {
        let mut inner = BTreeMap::new();
        inner.insert("x".to_owned(), Amf0::Number(2.0));
        let mut outer = BTreeMap::new();
        outer.insert("inner".to_owned(), Amf0::Object(inner));
        outer.insert("n".to_owned(), Amf0::Null);
        round_trip(&Amf0::Object(outer));
    }

    #[test]
    fn on_metadata_round_trip() {
        let meta = OnMetaData {
            width: 1920.0,
            height: 1080.0,
            framerate: 30.0,
            videodatarate: 3_000.0,
        };
        let bytes = meta.encode();
        assert_eq!(OnMetaData::decode(&bytes), Ok(meta));
    }

    #[test]
    fn truncation_detected() {
        let meta = OnMetaData {
            width: 1280.0,
            height: 720.0,
            framerate: 30.0,
            videodatarate: 1_500.0,
        };
        let bytes = meta.encode();
        for cut in 0..bytes.len() {
            // No prefix may parse into a full OnMetaData silently.
            if let Ok(m) = OnMetaData::decode(&bytes[..cut]) {
                panic!("truncated decode at {cut} produced {m:?}");
            }
        }
    }

    #[test]
    fn unknown_marker_rejected() {
        assert_eq!(Amf0::decode(&[42]), Err(AmfError::UnsupportedMarker(42)));
        assert_eq!(Amf0::decode(&[]), Err(AmfError::Truncated));
    }

    #[test]
    fn get_number_accessor() {
        let mut map = BTreeMap::new();
        map.insert("fps".to_owned(), Amf0::Number(30.0));
        map.insert("name".to_owned(), Amf0::String("s".to_owned()));
        let obj = Amf0::Object(map);
        assert_eq!(obj.get_number("fps"), Some(30.0));
        assert_eq!(obj.get_number("name"), None);
        assert_eq!(obj.get_number("missing"), None);
        assert_eq!(Amf0::Null.get_number("fps"), None);
    }

    #[test]
    fn script_tag_integration() {
        // An onMetaData payload travels inside an FLV script tag.
        use crate::flv::{decode_tag, encode_tag, Tag, TagType};
        use bytes::{Bytes, BytesMut};
        let meta = OnMetaData {
            width: 1920.0,
            height: 1080.0,
            framerate: 30.0,
            videodatarate: 3_000.0,
        };
        let tag = Tag {
            tag_type: TagType::Script,
            timestamp_ms: 0,
            payload: Bytes::from(meta.encode()),
        };
        let mut out = BytesMut::new();
        encode_tag(&mut out, &tag);
        let (decoded, _) = decode_tag(&out).expect("tag decodes");
        assert_eq!(OnMetaData::decode(&decoded.payload), Ok(meta));
    }
}
