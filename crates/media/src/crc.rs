//! CRC-32 (IEEE 802.3 polynomial).
//!
//! Frame footprints (§5.2) embed a CRC over the current and two prior
//! frame headers so that clients can validate that a reconstructed chain
//! ordering is consistent with what each relaying node observed.

/// Reflected IEEE CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// A streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh CRC computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the CRC.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finalises and returns the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// Convenience: CRC-32 of a single slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn sensitive_to_order() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
