//! Static substream partitioning.
//!
//! §6: a stream `f0, f1, f2, ...` is segmented into K substreams by
//! `ssid(f) = fnv1a(dts(f)) mod K`. The FNV-1a hash prevents several
//! consecutive large frames from landing on the same substream and
//! causing bursty traffic on one relay.

use crate::frame::{FrameHeader, FrameType};
use crate::hash::fnv1a_u64;
use serde::{Deserialize, Serialize};

/// Identifies one substream of a stream (`0..K`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubstreamId(pub u16);

/// Computes the substream a frame belongs to, for a stream split K ways.
///
/// # Examples
///
/// ```
/// use rlive_media::frame::{FrameHeader, FrameType};
/// use rlive_media::substream::substream_of;
///
/// let h = FrameHeader { stream_id: 1, dts_ms: 330, frame_type: FrameType::P, size: 9_000 };
/// let ss = substream_of(&h, 4);
/// assert!(ss.0 < 4);
/// assert_eq!(ss, substream_of(&h, 4), "stable across relays");
/// ```
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn substream_of(header: &FrameHeader, k: u16) -> SubstreamId {
    assert!(k > 0, "substream count must be positive");
    SubstreamId((fnv1a_u64(header.dts_ms) % k as u64) as u16)
}

/// How frames map onto substreams.
///
/// The deployed system uses [`PartitionStrategy::StaticHash`] (§6); the
/// paper's §8.3 names adaptive scheduling — directing critical or large
/// frames to more stable nodes — as an open extension, implemented here
/// as [`PartitionStrategy::SizeAware`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PartitionStrategy {
    /// `ssid(f) = fnv1a(dts(f)) mod K` — stateless, uniform (§6).
    #[default]
    StaticHash,
    /// Criticality-aware: I-frames (which decode the whole GoP) always
    /// map to substream 0, which the control plane assigns to its most
    /// stable candidate relay; other frames hash over the remaining
    /// substreams. Remains a pure function of the frame header, so
    /// relays and clients stay consistent without extra signalling.
    SizeAware,
}

impl PartitionStrategy {
    /// Maps a frame to its substream under this strategy.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn assign(self, header: &FrameHeader, k: u16) -> SubstreamId {
        assert!(k > 0, "substream count must be positive");
        match self {
            PartitionStrategy::StaticHash => substream_of(header, k),
            PartitionStrategy::SizeAware => {
                if k == 1 || header.frame_type == FrameType::I {
                    SubstreamId(0)
                } else {
                    SubstreamId(1 + (fnv1a_u64(header.dts_ms) % (k as u64 - 1)) as u16)
                }
            }
        }
    }
}

/// A partition plan: which substream each of the next frames maps to,
/// plus utilities for analysing balance.
#[derive(Debug, Clone)]
pub struct Partitioner {
    k: u16,
}

impl Partitioner {
    /// Creates a partitioner for `k` substreams.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u16) -> Self {
        assert!(k > 0, "substream count must be positive");
        Partitioner { k }
    }

    /// Number of substreams.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Maps a frame header to its substream.
    pub fn assign(&self, header: &FrameHeader) -> SubstreamId {
        substream_of(header, self.k)
    }

    /// Measures byte-level balance across substreams for a frame set:
    /// returns the ratio of the heaviest substream's bytes to the ideal
    /// equal share (1.0 = perfectly balanced).
    pub fn imbalance(&self, headers: &[FrameHeader]) -> f64 {
        if headers.is_empty() {
            return 1.0;
        }
        let mut bytes = vec![0u64; self.k as usize];
        for h in headers {
            bytes[self.assign(h).0 as usize] += h.size as u64;
        }
        let total: u64 = bytes.iter().sum();
        let ideal = total as f64 / self.k as f64;
        if ideal == 0.0 {
            return 1.0;
        }
        *bytes.iter().max().expect("k > 0") as f64 / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameType;
    use crate::gop::{GopConfig, GopGenerator};
    use rlive_sim::SimRng;

    fn headers(n: usize) -> Vec<FrameHeader> {
        let mut g = GopGenerator::new(1, GopConfig::default(), SimRng::new(1));
        g.take_frames(n).iter().map(|f| f.header).collect()
    }

    #[test]
    fn assignment_is_stable() {
        let h = FrameHeader {
            stream_id: 1,
            dts_ms: 330,
            frame_type: FrameType::P,
            size: 1000,
        };
        assert_eq!(substream_of(&h, 4), substream_of(&h, 4));
    }

    #[test]
    fn assignment_depends_only_on_dts_and_k() {
        let a = FrameHeader {
            stream_id: 1,
            dts_ms: 330,
            frame_type: FrameType::P,
            size: 1000,
        };
        let b = FrameHeader {
            stream_id: 2,
            dts_ms: 330,
            frame_type: FrameType::I,
            size: 99_999,
        };
        // Relays on different streams must agree on the mapping given dts,
        // because only dts is carried by the CDN's routing logic (§6).
        assert_eq!(substream_of(&a, 4), substream_of(&b, 4));
    }

    #[test]
    fn all_substreams_used() {
        let p = Partitioner::new(4);
        let hs = headers(2_000);
        let mut seen = [false; 4];
        for h in &hs {
            seen[p.assign(h).0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn byte_balance_is_reasonable() {
        // With FNV-1a, even I-frame size skew should spread: heaviest
        // substream within 25% of the ideal share over a long window.
        let p = Partitioner::new(4);
        let hs = headers(20_000);
        let imb = p.imbalance(&hs);
        assert!(imb < 1.25, "imbalance {imb}");
    }

    #[test]
    fn k_one_maps_everything_to_zero() {
        let p = Partitioner::new(1);
        for h in headers(100) {
            assert_eq!(p.assign(&h), SubstreamId(0));
        }
        assert_eq!(p.imbalance(&headers(100)), 1.0);
    }

    #[test]
    #[should_panic(expected = "substream count")]
    fn zero_k_panics() {
        Partitioner::new(0);
    }

    #[test]
    fn empty_imbalance_is_one() {
        assert_eq!(Partitioner::new(3).imbalance(&[]), 1.0);
    }

    #[test]
    fn size_aware_pins_iframes_to_substream_zero() {
        let hs = headers(600);
        for h in &hs {
            let ss = PartitionStrategy::SizeAware.assign(h, 4);
            if h.frame_type == FrameType::I {
                assert_eq!(ss, SubstreamId(0));
            } else {
                assert_ne!(ss, SubstreamId(0));
                assert!(ss.0 < 4);
            }
        }
    }

    #[test]
    fn size_aware_is_header_pure() {
        // Relays and clients must agree without signalling: the mapping
        // is a pure function of the header.
        let hs = headers(50);
        for h in &hs {
            assert_eq!(
                PartitionStrategy::SizeAware.assign(h, 4),
                PartitionStrategy::SizeAware.assign(h, 4)
            );
        }
    }

    #[test]
    fn static_strategy_matches_free_function() {
        let hs = headers(100);
        for h in &hs {
            assert_eq!(
                PartitionStrategy::StaticHash.assign(h, 4),
                substream_of(h, 4)
            );
        }
    }

    #[test]
    fn size_aware_k1_degenerates() {
        let hs = headers(10);
        for h in &hs {
            assert_eq!(PartitionStrategy::SizeAware.assign(h, 1), SubstreamId(0));
        }
    }
}
