//! GoP (group of pictures) and frame sequence generation.
//!
//! Live encoders emit a periodic GoP structure — an I-frame followed by
//! P/B frames — at a fixed frame rate, with frame sizes fluctuating
//! around the bitrate target. The generator reproduces that structure so
//! the data plane sees realistic dts cadence, size skew (I-frames several
//! times larger than P/B) and per-frame jitter.

use crate::frame::{Frame, FrameHeader, FrameType};
use rlive_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Encoder configuration for one stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GopConfig {
    /// Frames per second.
    pub fps: u32,
    /// Target video bitrate in bits per second.
    pub bitrate_bps: u64,
    /// GoP length in frames (one I-frame per GoP).
    pub gop_frames: u32,
    /// Number of B-frames between P anchors (0 disables B-frames).
    pub b_frames: u32,
    /// Relative size of an I-frame vs the average frame.
    pub i_frame_scale: f64,
    /// Coefficient of variation of individual frame sizes.
    pub size_jitter: f64,
}

impl Default for GopConfig {
    fn default() -> Self {
        // 30 fps, 3 Mbps, 2-second GoP: a typical mobile live profile.
        GopConfig {
            fps: 30,
            bitrate_bps: 3_000_000,
            gop_frames: 60,
            b_frames: 2,
            i_frame_scale: 6.0,
            size_jitter: 0.25,
        }
    }
}

impl GopConfig {
    /// A profile for the given bitrate ladder rung, keeping the default
    /// cadence.
    pub fn with_bitrate(bitrate_bps: u64) -> Self {
        GopConfig {
            bitrate_bps,
            ..GopConfig::default()
        }
    }

    /// Mean frame size in bytes implied by bitrate and fps.
    pub fn mean_frame_size(&self) -> f64 {
        self.bitrate_bps as f64 / 8.0 / self.fps as f64
    }

    /// Frame interval in milliseconds (fractional).
    pub fn frame_interval_ms(&self) -> f64 {
        1000.0 / self.fps as f64
    }
}

/// Generates the frame sequence of one live stream.
///
/// # Examples
///
/// ```
/// use rlive_media::gop::{GopConfig, GopGenerator};
/// use rlive_media::frame::FrameType;
/// use rlive_sim::SimRng;
///
/// let mut gen = GopGenerator::new(1, GopConfig::default(), SimRng::new(7));
/// let frames = gen.take_frames(60);
/// assert_eq!(frames[0].header.frame_type, FrameType::I);
/// assert!(frames.iter().all(|f| f.size() > 0));
/// ```
#[derive(Debug, Clone)]
pub struct GopGenerator {
    cfg: GopConfig,
    stream_id: u64,
    rng: SimRng,
    index: u64,
}

impl GopGenerator {
    /// Creates a generator for `stream_id` with its own RNG stream.
    pub fn new(stream_id: u64, cfg: GopConfig, rng: SimRng) -> Self {
        GopGenerator {
            cfg,
            stream_id,
            rng,
            index: 0,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GopConfig {
        &self.cfg
    }

    /// Switches the bitrate target (ABR rung change) without disturbing
    /// the GoP phase.
    pub fn set_bitrate(&mut self, bitrate_bps: u64) {
        self.cfg.bitrate_bps = bitrate_bps;
    }

    /// Index of the next frame to be produced.
    pub fn next_index(&self) -> u64 {
        self.index
    }

    fn type_for(&self, idx_in_gop: u64) -> FrameType {
        if idx_in_gop == 0 {
            FrameType::I
        } else if self.cfg.b_frames == 0 || idx_in_gop.is_multiple_of(self.cfg.b_frames as u64 + 1)
        {
            FrameType::P
        } else {
            FrameType::B
        }
    }

    /// Produces the next frame in decode order.
    pub fn next_frame(&mut self) -> Frame {
        let idx = self.index;
        self.index += 1;
        let idx_in_gop = idx % self.cfg.gop_frames as u64;
        let frame_type = self.type_for(idx_in_gop);

        // Budget the GoP so the average rate meets the bitrate target:
        // one I-frame of scale s and (g-1) inter frames sharing the rest.
        let g = self.cfg.gop_frames as f64;
        let s = self.cfg.i_frame_scale;
        let mean = self.cfg.mean_frame_size();
        let inter_mean = mean * g / (s + g - 1.0);
        // P frames are heavier than B frames; normalise the weights by the
        // P:B mix so the average inter frame still hits `inter_mean`.
        let (w_p, w_b) = (1.25, 0.75);
        let b = self.cfg.b_frames as f64;
        let mix = (w_p + w_b * b) / (1.0 + b);
        let base = match frame_type {
            FrameType::I => inter_mean * s,
            FrameType::P => inter_mean * w_p / mix,
            FrameType::B => inter_mean * w_b / mix,
        };
        let jitter = 1.0 + self.cfg.size_jitter * self.rng.normal();
        let size = (base * jitter.clamp(0.3, 3.0)).max(200.0) as u32;

        let dts_ms = (idx as f64 * self.cfg.frame_interval_ms()).round() as u64;
        Frame::new(FrameHeader {
            stream_id: self.stream_id,
            dts_ms,
            frame_type,
            size,
        })
    }

    /// Produces the next `n` frames.
    pub fn take_frames(&mut self, n: usize) -> Vec<Frame> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64) -> GopGenerator {
        GopGenerator::new(1, GopConfig::default(), SimRng::new(seed))
    }

    #[test]
    fn dts_is_monotonic_at_frame_interval() {
        let mut g = generator(1);
        let frames = g.take_frames(100);
        for w in frames.windows(2) {
            let gap = w[1].dts_ms() - w[0].dts_ms();
            assert!((33..=34).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn gop_structure() {
        let mut g = generator(2);
        let frames = g.take_frames(180);
        // One I-frame at the head of each 60-frame GoP.
        for (i, f) in frames.iter().enumerate() {
            if i % 60 == 0 {
                assert_eq!(f.header.frame_type, FrameType::I, "frame {i}");
            } else {
                assert_ne!(f.header.frame_type, FrameType::I, "frame {i}");
            }
        }
        // With b_frames = 2, pattern after I is B B P B B P ...
        assert_eq!(frames[1].header.frame_type, FrameType::B);
        assert_eq!(frames[2].header.frame_type, FrameType::B);
        assert_eq!(frames[3].header.frame_type, FrameType::P);
    }

    #[test]
    fn average_rate_meets_bitrate_target() {
        let mut g = generator(3);
        let frames = g.take_frames(3_000);
        let total_bytes: u64 = frames.iter().map(|f| f.size() as u64).sum();
        let duration_s = 3_000.0 / 30.0;
        let rate = total_bytes as f64 * 8.0 / duration_s;
        let target = GopConfig::default().bitrate_bps as f64;
        assert!(
            (rate - target).abs() / target < 0.05,
            "rate {rate} vs target {target}"
        );
    }

    #[test]
    fn i_frames_dominate_sizes() {
        let mut g = generator(4);
        let frames = g.take_frames(600);
        let i_mean: f64 = {
            let v: Vec<f64> = frames
                .iter()
                .filter(|f| f.header.frame_type == FrameType::I)
                .map(|f| f.size() as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let p_mean: f64 = {
            let v: Vec<f64> = frames
                .iter()
                .filter(|f| f.header.frame_type == FrameType::P)
                .map(|f| f.size() as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(i_mean > p_mean * 3.0, "I {i_mean} vs P {p_mean}");
    }

    #[test]
    fn bitrate_switch_changes_sizes() {
        let mut g = generator(5);
        let before: u64 = g.take_frames(300).iter().map(|f| f.size() as u64).sum();
        g.set_bitrate(6_000_000);
        let after: u64 = g.take_frames(300).iter().map(|f| f.size() as u64).sum();
        assert!(after as f64 > before as f64 * 1.7, "{before} -> {after}");
    }

    #[test]
    fn no_b_frames_profile() {
        let cfg = GopConfig {
            b_frames: 0,
            ..GopConfig::default()
        };
        let mut g = GopGenerator::new(1, cfg, SimRng::new(6));
        let frames = g.take_frames(10);
        assert_eq!(frames[0].header.frame_type, FrameType::I);
        for f in &frames[1..] {
            assert_eq!(f.header.frame_type, FrameType::P);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u32> = generator(7)
            .take_frames(50)
            .iter()
            .map(|f| f.size())
            .collect();
        let b: Vec<u32> = generator(7)
            .take_frames(50)
            .iter()
            .map(|f| f.size())
            .collect();
        assert_eq!(a, b);
    }
}
