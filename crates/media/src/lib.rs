//! Video stream substrate for RLive.
//!
//! The RLive data plane (§5 of the paper) operates on compressed video
//! frames (NALUs) pulled from the CDN as an FLV stream, split into
//! substreams at frame granularity, packetised into fixed-size UDP
//! payloads and chained with lightweight frame footprints so clients can
//! reorder them. This crate provides all of those pieces:
//!
//! - frame and GoP modelling with realistic size/cadence statistics
//!   ([`frame`], [`gop`]),
//! - a byte-level FLV tag codec ([`flv`]) and NALU header model
//!   ([`nalu`]),
//! - FNV-1a hashing and the static round-robin substream partitioner
//!   `ssid(f) = fnv1a(dts) mod K` (§6) ([`hash`], [`substream`]),
//! - CRC-32 and the frame footprint `(dts, crc, cnt)` with local frame
//!   chains of length δ (§5.2) ([`crc`], [`footprint`]),
//! - an AMF0 codec for FLV `onMetaData` script tags ([`amf`]),
//! - fixed-size packetisation with a wire codec for the subscribe-push
//!   data path ([`packet`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amf;
pub mod crc;
pub mod flv;
pub mod footprint;
pub mod frame;
pub mod gop;
pub mod hash;
pub mod nalu;
pub mod packet;
pub mod substream;

pub use footprint::{Footprint, LocalChain, CHAIN_LEN};
pub use frame::{Frame, FrameHeader, FrameType};
pub use gop::{GopConfig, GopGenerator};
pub use packet::{DataPacket, PACKET_PAYLOAD};
pub use substream::{substream_of, SubstreamId};
