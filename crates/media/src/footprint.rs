//! Frame footprints and local frame chains (§5.2).
//!
//! Mainstream live protocols carry no frame sequence identifier, so RLive
//! lets each best-effort node generate a *local frame chain*: a list of
//! lightweight footprints `(dts, crc, cnt)` for the most recent frames it
//! has relayed, embedded into every data packet. The CRC covers the
//! current header and the two prior headers so a client can validate that
//! the ordering it reconstructs matches what the relay observed; the
//! packet count (`cnt`) lets the client know when a frame is complete.
//! The chain length δ is 4 in the deployed system.

use crate::crc::Crc32;
use crate::frame::FrameHeader;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Deployed chain length δ (§5.2): each packet carries the footprints of
/// the current frame and its three predecessors.
pub const CHAIN_LEN: usize = 4;

/// Number of prior headers mixed into each footprint's CRC.
pub const CRC_DEPTH: usize = 2;

/// A lightweight, unique frame identifier: `(dts, crc, cnt)`.
///
/// `crc` embeds the current and the prior two frame headers, giving
/// uniqueness without hashing payload bytes (which would force relays to
/// pull substreams they do not serve, §5.2). `cnt` is the number of
/// fixed-size packets the frame was split into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Footprint {
    /// Decoding timestamp of the frame, in milliseconds.
    pub dts_ms: u64,
    /// CRC-32 over the current and previous two frame headers.
    pub crc: u32,
    /// Packet count of the frame.
    pub cnt: u32,
}

impl Footprint {
    /// Computes the footprint of `header` given the up-to-two headers
    /// that precede it in the *full stream* order (most recent last).
    pub fn compute(header: &FrameHeader, prior: &[FrameHeader], packet_count: u32) -> Footprint {
        let mut crc = Crc32::new();
        let start = prior.len().saturating_sub(CRC_DEPTH);
        for p in &prior[start..] {
            crc.update(&p.to_bytes());
        }
        crc.update(&header.to_bytes());
        Footprint {
            dts_ms: header.dts_ms,
            crc: crc.finish(),
            cnt: packet_count,
        }
    }

    /// Wire size of an encoded footprint.
    pub const WIRE_SIZE: usize = 16;

    /// Encodes into 16 bytes.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.dts_ms.to_be_bytes());
        out[8..12].copy_from_slice(&self.crc.to_be_bytes());
        out[12..16].copy_from_slice(&self.cnt.to_be_bytes());
        out
    }

    /// Decodes from 16 bytes.
    pub fn from_bytes(bytes: &[u8; 16]) -> Footprint {
        Footprint {
            dts_ms: u64::from_be_bytes(bytes[0..8].try_into().expect("8 bytes")),
            crc: u32::from_be_bytes(bytes[8..12].try_into().expect("4 bytes")),
            cnt: u32::from_be_bytes(bytes[12..16].try_into().expect("4 bytes")),
        }
    }
}

/// A local frame chain: the footprints of the most recent δ frames a
/// relay has observed for its substream's *stream* (the CDN supplies
/// headers of the other substreams too, §5.1), oldest first.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LocalChain {
    footprints: Vec<Footprint>,
}

impl LocalChain {
    /// Creates a chain from footprints, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if more than [`CHAIN_LEN`] footprints are supplied.
    pub fn new(footprints: Vec<Footprint>) -> Self {
        assert!(footprints.len() <= CHAIN_LEN, "chain too long");
        LocalChain { footprints }
    }

    /// The footprints, oldest first.
    pub fn footprints(&self) -> &[Footprint] {
        &self.footprints
    }

    /// The newest footprint, if any.
    pub fn head(&self) -> Option<&Footprint> {
        self.footprints.last()
    }

    /// Number of footprints in the chain.
    pub fn len(&self) -> usize {
        self.footprints.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.footprints.is_empty()
    }

    /// Encodes as `1 + 16·len` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.footprints.len() * Footprint::WIRE_SIZE);
        out.push(self.footprints.len() as u8);
        for f in &self.footprints {
            out.extend_from_slice(&f.to_bytes());
        }
        out
    }

    /// Decodes a chain; returns the chain and bytes consumed, or `None`
    /// on truncation or an oversized length byte.
    pub fn from_bytes(bytes: &[u8]) -> Option<(LocalChain, usize)> {
        let n = *bytes.first()? as usize;
        if n > CHAIN_LEN {
            return None;
        }
        let need = 1 + n * Footprint::WIRE_SIZE;
        if bytes.len() < need {
            return None;
        }
        let mut footprints = Vec::with_capacity(n);
        for i in 0..n {
            let start = 1 + i * Footprint::WIRE_SIZE;
            let arr: [u8; 16] = bytes[start..start + 16].try_into().expect("16 bytes");
            footprints.push(Footprint::from_bytes(&arr));
        }
        Some((LocalChain { footprints }, need))
    }
}

/// Builds local chains incrementally as a relay observes frame headers of
/// a stream in order.
///
/// The CDN delivers the relay complete frames for its substream and
/// headers for every other substream (§5.1), so the generator sees the
/// full-stream header sequence and chains are consistent across relays.
#[derive(Debug, Clone)]
pub struct ChainGenerator {
    /// Recent headers, for CRC context (bounded by `CRC_DEPTH`).
    recent_headers: VecDeque<FrameHeader>,
    /// Recent footprints, oldest first (bounded by `CHAIN_LEN`).
    recent_footprints: VecDeque<Footprint>,
    payload_per_packet: u32,
}

impl ChainGenerator {
    /// Creates a generator that packetises at `payload_per_packet` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `payload_per_packet == 0`.
    pub fn new(payload_per_packet: u32) -> Self {
        assert!(payload_per_packet > 0, "payload size must be positive");
        ChainGenerator {
            recent_headers: VecDeque::with_capacity(CRC_DEPTH + 1),
            recent_footprints: VecDeque::with_capacity(CHAIN_LEN + 1),
            payload_per_packet,
        }
    }

    /// Observes the next frame header in stream order and returns the
    /// local chain to embed in that frame's packets (ending at this
    /// frame's footprint).
    pub fn observe(&mut self, header: &FrameHeader) -> LocalChain {
        let prior: Vec<FrameHeader> = self.recent_headers.iter().copied().collect();
        let cnt = header.size.div_ceil(self.payload_per_packet).max(1);
        let fp = Footprint::compute(header, &prior, cnt);

        self.recent_headers.push_back(*header);
        while self.recent_headers.len() > CRC_DEPTH {
            self.recent_headers.pop_front();
        }
        self.recent_footprints.push_back(fp);
        while self.recent_footprints.len() > CHAIN_LEN {
            self.recent_footprints.pop_front();
        }
        LocalChain::new(self.recent_footprints.iter().copied().collect())
    }

    /// The most recently generated footprint.
    pub fn last_footprint(&self) -> Option<&Footprint> {
        self.recent_footprints.back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameType;
    use crate::gop::{GopConfig, GopGenerator};
    use rlive_sim::SimRng;

    fn headers(n: usize) -> Vec<FrameHeader> {
        let mut g = GopGenerator::new(9, GopConfig::default(), SimRng::new(3));
        g.take_frames(n).iter().map(|f| f.header).collect()
    }

    #[test]
    fn footprint_round_trip() {
        let hs = headers(3);
        let fp = Footprint::compute(&hs[2], &hs[..2], 7);
        assert_eq!(Footprint::from_bytes(&fp.to_bytes()), fp);
    }

    #[test]
    fn footprint_depends_on_prior_headers() {
        let hs = headers(4);
        let with_correct_prior = Footprint::compute(&hs[2], &hs[..2], 7);
        let with_wrong_prior = Footprint::compute(&hs[2], &[hs[0], hs[3]], 7);
        assert_ne!(with_correct_prior.crc, with_wrong_prior.crc);
    }

    #[test]
    fn footprint_unique_across_frames() {
        let hs = headers(500);
        let mut seen = std::collections::HashSet::new();
        for i in 0..hs.len() {
            let prior = &hs[i.saturating_sub(2)..i];
            let fp = Footprint::compute(&hs[i], prior, 1);
            assert!(
                seen.insert((fp.dts_ms, fp.crc)),
                "duplicate footprint at {i}"
            );
        }
    }

    #[test]
    fn generator_chains_grow_to_delta() {
        let mut g = ChainGenerator::new(1200);
        let hs = headers(10);
        for (i, h) in hs.iter().enumerate() {
            let chain = g.observe(h);
            assert_eq!(chain.len(), (i + 1).min(CHAIN_LEN));
            assert_eq!(chain.head().expect("head").dts_ms, h.dts_ms);
        }
    }

    #[test]
    fn two_relays_generate_identical_chains() {
        // Relays serve different substreams but observe the same header
        // sequence, so their chains must agree — the core property that
        // lets the client merge them (§5.2).
        let hs = headers(50);
        let mut a = ChainGenerator::new(1200);
        let mut b = ChainGenerator::new(1200);
        for h in &hs {
            assert_eq!(a.observe(h), b.observe(h));
        }
    }

    #[test]
    fn chain_wire_round_trip() {
        let mut g = ChainGenerator::new(1200);
        let hs = headers(6);
        let mut chain = LocalChain::default();
        for h in &hs {
            chain = g.observe(h);
        }
        let bytes = chain.to_bytes();
        let (decoded, used) = LocalChain::from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded, chain);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn chain_decode_rejects_truncation_and_oversize() {
        let mut g = ChainGenerator::new(1200);
        let hs = headers(5);
        let mut chain = LocalChain::default();
        for h in &hs {
            chain = g.observe(h);
        }
        let bytes = chain.to_bytes();
        assert!(LocalChain::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut oversized = bytes.clone();
        oversized[0] = CHAIN_LEN as u8 + 1;
        assert!(LocalChain::from_bytes(&oversized).is_none());
    }

    #[test]
    fn cnt_matches_packetisation() {
        let mut g = ChainGenerator::new(1000);
        let h = FrameHeader {
            stream_id: 1,
            dts_ms: 0,
            frame_type: FrameType::I,
            size: 2500,
        };
        let chain = g.observe(&h);
        assert_eq!(chain.head().expect("head").cnt, 3);
    }

    #[test]
    fn empty_chain_encodes_one_byte() {
        let chain = LocalChain::default();
        assert_eq!(chain.to_bytes(), vec![0]);
        let (decoded, used) = LocalChain::from_bytes(&[0]).expect("decodes");
        assert!(decoded.is_empty());
        assert_eq!(used, 1);
    }
}
