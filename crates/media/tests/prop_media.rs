//! Property-based tests of the media substrate: codec round trips,
//! footprint determinism and partition stability.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use rlive_media::flv::{decode_tag, encode_tag, Tag, TagType};
use rlive_media::footprint::{ChainGenerator, Footprint, LocalChain, CHAIN_LEN};
use rlive_media::frame::{Frame, FrameHeader, FrameType};
use rlive_media::packet::{packetize, DataPacket, PACKET_PAYLOAD};
use rlive_media::substream::{substream_of, Partitioner};

fn arb_frame_type() -> impl Strategy<Value = FrameType> {
    prop_oneof![Just(FrameType::I), Just(FrameType::P), Just(FrameType::B),]
}

fn arb_header() -> impl Strategy<Value = FrameHeader> {
    (
        any::<u64>(),
        0u64..1 << 40,
        arb_frame_type(),
        1u32..5_000_000,
    )
        .prop_map(|(stream_id, dts_ms, frame_type, size)| FrameHeader {
            stream_id,
            dts_ms,
            frame_type,
            size,
        })
}

proptest! {
    /// FrameHeader wire form round-trips for any header.
    #[test]
    fn frame_header_round_trip(h in arb_header()) {
        let bytes = h.to_bytes();
        prop_assert_eq!(FrameHeader::from_bytes(&bytes), Some(h));
    }

    /// FLV tags round-trip for arbitrary payloads and timestamps.
    #[test]
    fn flv_tag_round_trip(
        ts in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..4_096),
        kind in 0usize..3,
    ) {
        let tag = Tag {
            tag_type: [TagType::Audio, TagType::Video, TagType::Script][kind],
            timestamp_ms: ts,
            payload: Bytes::from(payload),
        };
        let mut out = BytesMut::new();
        encode_tag(&mut out, &tag);
        let (decoded, used) = decode_tag(&out).expect("round trip");
        prop_assert_eq!(decoded, tag);
        prop_assert_eq!(used, out.len());
    }

    /// Data packets round-trip through the wire codec.
    #[test]
    fn packet_round_trip(h in arb_header(), publisher in any::<u32>(), k in 1u16..8) {
        let h = FrameHeader { size: h.size.min(200_000), ..h };
        let frame = Frame::new(h);
        let mut cg = ChainGenerator::new(PACKET_PAYLOAD);
        let chain = cg.observe(&h);
        let ss = substream_of(&h, k).0;
        for pkt in packetize(&frame, ss, &chain, publisher) {
            let bytes = pkt.encode();
            prop_assert_eq!(DataPacket::decode(&bytes), Some(pkt));
        }
    }

    /// Packetisation covers the frame exactly: payload lengths sum to
    /// the frame size, indices are dense.
    #[test]
    fn packetize_covers(h in arb_header()) {
        let h = FrameHeader { size: h.size.clamp(1, 2_000_000), ..h };
        let frame = Frame::new(h);
        let mut cg = ChainGenerator::new(PACKET_PAYLOAD);
        let chain = cg.observe(&h);
        let pkts = packetize(&frame, 0, &chain, 1);
        let total: u32 = pkts.iter().map(|p| p.payload_len).sum();
        prop_assert_eq!(total, h.size);
        for (i, p) in pkts.iter().enumerate() {
            prop_assert_eq!(p.packet_index, i as u32);
            prop_assert_eq!(p.packet_count, pkts.len() as u32);
            prop_assert!(p.payload_len <= PACKET_PAYLOAD);
        }
    }

    /// Local chains round-trip and never exceed δ.
    #[test]
    fn chain_round_trip(headers in prop::collection::vec(arb_header(), 1..12)) {
        let mut cg = ChainGenerator::new(PACKET_PAYLOAD);
        let mut chain = LocalChain::default();
        for h in &headers {
            chain = cg.observe(h);
            prop_assert!(chain.len() <= CHAIN_LEN);
        }
        let bytes = chain.to_bytes();
        let (decoded, used) = LocalChain::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(decoded, chain);
        prop_assert_eq!(used, bytes.len());
    }

    /// Footprints are a pure function of the header sequence: two
    /// independent generators observing the same sequence agree.
    #[test]
    fn footprints_deterministic(headers in prop::collection::vec(arb_header(), 1..30)) {
        let mut a = ChainGenerator::new(PACKET_PAYLOAD);
        let mut b = ChainGenerator::new(PACKET_PAYLOAD);
        for h in &headers {
            prop_assert_eq!(a.observe(h), b.observe(h));
        }
    }

    /// Footprint wire form round-trips.
    #[test]
    fn footprint_round_trip(dts in any::<u64>(), crc in any::<u32>(), cnt in any::<u32>()) {
        let fp = Footprint { dts_ms: dts, crc, cnt };
        prop_assert_eq!(Footprint::from_bytes(&fp.to_bytes()), fp);
    }

    /// Substream assignment is stable and independent of mutable header
    /// fields other than dts.
    #[test]
    fn partition_stable(h in arb_header(), k in 1u16..16, other_size in 1u32..1_000_000) {
        let a = substream_of(&h, k);
        prop_assert!(a.0 < k);
        let mutated = FrameHeader { size: other_size, stream_id: h.stream_id ^ 0xFF, ..h };
        prop_assert_eq!(substream_of(&mutated, k), a);
        // Partitioner agrees with the free function.
        prop_assert_eq!(Partitioner::new(k).assign(&h), a);
    }

    /// Truncated packets never decode successfully to a different value.
    #[test]
    fn packet_truncation_safe(h in arb_header(), cut_frac in 0.0f64..1.0) {
        let h = FrameHeader { size: h.size.clamp(1, 10_000), ..h };
        let frame = Frame::new(h);
        let mut cg = ChainGenerator::new(PACKET_PAYLOAD);
        let chain = cg.observe(&h);
        let pkt = &packetize(&frame, 0, &chain, 1)[0];
        let bytes = pkt.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            match DataPacket::decode(&bytes[..cut]) {
                None => {}
                Some(decoded) => prop_assert_ne!(&decoded, pkt, "truncated decode equal"),
            }
        }
    }
}
