//! Property-based tests of the control plane: registry membership
//! invariants, quota accounting, scoring bounds and switching-rule
//! consistency.

use proptest::prelude::*;
use rlive_control::client::{ClientController, ClientControllerConfig, SwitchDecision};
use rlive_control::features::{
    ClientId, ClientInfo, ConnectionType, NodeClass, NodeId, NodeStatus, StaticFeatures, StreamKey,
};
use rlive_control::quota::NodeQuotas;
use rlive_control::registry::{AttrQuery, HashTreeRegistry};
use rlive_control::scoring::{score, NatSuccessHistory, Platform, ScoreWeights};
use rlive_sim::nat::NatType;
use rlive_sim::{SimDuration, SimTime};

#[derive(Debug, Clone)]
enum RegistryOp {
    Index {
        node: u64,
        isp: u16,
        region: u16,
        stream: u64,
    },
    Remove {
        node: u64,
    },
}

fn arb_op() -> impl Strategy<Value = RegistryOp> {
    prop_oneof![
        (0u64..40, 0u16..3, 0u16..4, 0u64..5).prop_map(|(node, isp, region, stream)| {
            RegistryOp::Index {
                node,
                isp,
                region,
                stream,
            }
        }),
        (0u64..40).prop_map(|node| RegistryOp::Remove { node }),
    ]
}

proptest! {
    /// After any sequence of index/remove operations, retrieval returns
    /// exactly the live nodes (no removed node, no duplicates) and the
    /// reverse index size matches.
    #[test]
    fn registry_membership(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut reg = HashTreeRegistry::new();
        let mut live = std::collections::HashMap::new();
        for op in &ops {
            match op {
                RegistryOp::Index { node, isp, region, stream } => {
                    reg.index_node(
                        NodeId(*node),
                        *isp,
                        NodeClass::Normal,
                        *region,
                        [StreamKey { stream_id: *stream, substream: 0 }],
                    );
                    live.insert(*node, (*isp, *region, *stream));
                }
                RegistryOp::Remove { node } => {
                    reg.remove_node(NodeId(*node));
                    live.remove(node);
                }
            }
        }
        prop_assert_eq!(reg.len(), live.len());
        let (nodes, _) = reg.retrieve(
            &AttrQuery {
                stream: StreamKey { stream_id: 0, substream: 0 },
                isp: 0,
                class: NodeClass::Normal,
                region: 0,
            },
            usize::MAX / 2,
        );
        let unique: std::collections::HashSet<_> = nodes.iter().collect();
        prop_assert_eq!(unique.len(), nodes.len(), "duplicates in retrieval");
        for n in &nodes {
            prop_assert!(live.contains_key(&n.0), "removed node {n:?} returned");
        }
        prop_assert_eq!(nodes.len(), live.len(), "retrieval missed live nodes");
    }

    /// Quota reserve/release never drives usage negative, and
    /// availability stays in [0, 1].
    #[test]
    fn quota_accounting(
        reserves in prop::collection::vec((0.1f64..10.0, 0.001f64..0.2, 0.5f64..32.0), 1..60),
        release_mask in prop::collection::vec(any::<bool>(), 1..60),
    ) {
        let mut q = NodeQuotas::new(50.0, 2.0, 512.0, 40.0);
        let mut accepted = Vec::new();
        for r in &reserves {
            if q.reserve(r.0, r.1, r.2) {
                accepted.push(*r);
            }
            prop_assert!(q.bandwidth.used <= q.bandwidth.capacity + 1e-9);
            prop_assert!(q.sessions.used <= q.sessions.capacity + 1e-9);
            prop_assert!((0.0..=1.0).contains(&q.availability()));
        }
        for (i, r) in accepted.iter().enumerate() {
            if *release_mask.get(i % release_mask.len()).unwrap_or(&true) {
                q.release(r.0, r.1, r.2);
            }
            prop_assert!(q.bandwidth.used >= -1e-9);
            prop_assert!(q.cpu.used >= -1e-9);
            prop_assert!(q.sessions.used >= -1e-9);
        }
    }

    /// Scores are always within [0, 1] for weight profiles that sum to 1.
    #[test]
    fn score_bounded(
        isp in 0u16..8,
        bgp in any::<u32>(),
        geo_x in -100.0f64..100.0,
        geo_y in -100.0f64..100.0,
        used in 0.0f64..200.0,
        cap in 1.0f64..200.0,
        nat_idx in 0usize..7,
    ) {
        let weights = ScoreWeights::for_platform(Platform::Android);
        let hist = NatSuccessHistory::default();
        let statics = StaticFeatures {
            isp,
            region: 0,
            bgp_prefix: bgp,
            geo: (geo_x, geo_y),
            class: NodeClass::Normal,
            conn_type: ConnectionType::Cable,
            nat: NatType::ALL[nat_idx],
        };
        let mut status = NodeStatus::idle(cap);
        status.used_mbps = used.min(cap);
        let client = ClientInfo {
            id: ClientId(1),
            isp: 1,
            region: 0,
            bgp_prefix: 7,
            geo: (0.0, 0.0),
            platform: Platform::Android,
        };
        let s = score(&weights, &statics, &status, &client, &hist);
        prop_assert!((0.0..=1.0).contains(&s), "score {s}");
    }

    /// The switching rule never targets the current publisher and only
    /// fires when the margin condition genuinely holds.
    #[test]
    fn switch_rule_consistent(
        current_rtt in 1u64..2_000,
        candidates in prop::collection::vec((0u64..20, 1u64..2_000), 1..10),
    ) {
        let mut ctl = ClientController::new(ClientControllerConfig::default());
        let t_change = ctl.config().t_change;
        let current = NodeId(999);
        let cands: Vec<(NodeId, SimDuration)> = candidates
            .iter()
            .map(|&(id, rtt)| (NodeId(id), SimDuration::from_millis(rtt)))
            .collect();
        let decision = ctl.assess_switch(
            SimTime::from_secs(1),
            current,
            SimDuration::from_millis(current_rtt),
            &cands,
        );
        let best = cands
            .iter()
            .filter(|(n, _)| *n != current)
            .min_by_key(|(_, r)| *r);
        match decision {
            SwitchDecision::SwitchTo(n) => {
                prop_assert_ne!(n, current);
                let (bn, br) = best.expect("candidates non-empty");
                prop_assert_eq!(n, *bn);
                prop_assert!(
                    SimDuration::from_millis(current_rtt) > *br + t_change,
                    "switch without margin"
                );
            }
            SwitchDecision::Stay => {
                if let Some((_, br)) = best {
                    prop_assert!(
                        SimDuration::from_millis(current_rtt) <= *br + t_change,
                        "missed a justified switch"
                    );
                }
            }
        }
    }
}
