//! The client controller (§4.1.2, §4.2.1).
//!
//! After receiving candidates from the global scheduler, the client
//! fine-tunes locally: it sends application-level connection probes to at
//! most three candidates and takes the first responder (§4.1.2 — probing
//! more yields <1 % success-rate gain at linear cost). During playback it
//! monitors RTT and switches publishers when
//! `RTT_cur > min_i(RTT_i + t_change)` (§4.2.1), and maintains a local
//! blacklist of persistently failing nodes (§8.2).

use crate::features::NodeId;
use rlive_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Client controller configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientControllerConfig {
    /// Maximum candidates probed per mapping round (deployed: 3).
    pub max_probes: usize,
    /// Switching cost `t_change` added to candidate RTTs: reconnection
    /// plus initialisation delay.
    pub t_change: SimDuration,
    /// Consecutive failures before a node is locally blacklisted.
    pub blacklist_after: u32,
    /// How long a blacklist entry lasts.
    pub blacklist_duration: SimDuration,
    /// Interval of the periodic QoS assessment.
    pub assess_interval: SimDuration,
}

impl Default for ClientControllerConfig {
    fn default() -> Self {
        ClientControllerConfig {
            max_probes: 3,
            t_change: SimDuration::from_millis(60),
            blacklist_after: 3,
            blacklist_duration: SimDuration::from_secs(120),
            assess_interval: SimDuration::from_secs(2),
        }
    }
}

/// Result of probing one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeOutcome {
    /// The probed node.
    pub node: NodeId,
    /// Measured application-level RTT if the probe succeeded.
    pub rtt: Option<SimDuration>,
}

/// A switching decision from the periodic assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchDecision {
    /// Stay on the current publisher.
    Stay,
    /// Switch to the given better candidate.
    SwitchTo(NodeId),
}

/// A small node-keyed table: a vec sorted by [`NodeId`], binary-
/// searched on access. The per-client populations here are tiny (a
/// handful of candidates), so flat storage beats hashing — and unlike
/// `HashMap`, iteration order is deterministic (ascending node id),
/// which keeps every consumer replay-stable.
fn table_search<V>(table: &[(NodeId, V)], node: NodeId) -> Result<usize, usize> {
    table.binary_search_by_key(&node, |&(n, _)| n)
}

fn table_set<V>(table: &mut Vec<(NodeId, V)>, node: NodeId, value: V) {
    match table_search(table, node) {
        Ok(i) => table[i].1 = value,
        Err(i) => table.insert(i, (node, value)),
    }
}

fn table_remove<V>(table: &mut Vec<(NodeId, V)>, node: NodeId) -> Option<V> {
    table_search(table, node).ok().map(|i| table.remove(i).1)
}

/// Per-client mapping state for one substream.
pub struct ClientController {
    cfg: ClientControllerConfig,
    /// Consecutive failure counts per node, sorted by node.
    failures: Vec<(NodeId, u32)>,
    /// Blacklist expiry per node, sorted by node.
    blacklist: Vec<(NodeId, SimTime)>,
    /// Last probe-measured RTT per candidate, sorted by node.
    candidate_rtts: Vec<(NodeId, SimDuration)>,
}

impl ClientController {
    /// Creates a controller.
    pub fn new(cfg: ClientControllerConfig) -> Self {
        ClientController {
            cfg,
            failures: Vec::new(),
            blacklist: Vec::new(),
            candidate_rtts: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ClientControllerConfig {
        &self.cfg
    }

    /// Filters a candidate list down to the nodes worth probing: skips
    /// blacklisted entries and truncates to `max_probes`.
    pub fn probe_list(&mut self, now: SimTime, candidates: &[NodeId]) -> Vec<NodeId> {
        self.expire_blacklist(now);
        candidates
            .iter()
            .copied()
            .filter(|&n| table_search(&self.blacklist, n).is_err())
            .take(self.cfg.max_probes)
            .collect()
    }

    /// Ingests probe outcomes and returns the chosen publisher: the
    /// *first successful responder* — in our synchronous model, the
    /// successful probe with the lowest RTT.
    pub fn select_from_probes(
        &mut self,
        now: SimTime,
        outcomes: &[ProbeOutcome],
    ) -> Option<NodeId> {
        let mut best: Option<(NodeId, SimDuration)> = None;
        for o in outcomes {
            match o.rtt {
                Some(rtt) => {
                    self.record_success(o.node, rtt);
                    if best.map(|(_, b)| rtt < b).unwrap_or(true) {
                        best = Some((o.node, rtt));
                    }
                }
                None => self.record_failure(now, o.node),
            }
        }
        best.map(|(n, _)| n)
    }

    /// Records a successful interaction (probe or data) with a node.
    pub fn record_success(&mut self, node: NodeId, rtt: SimDuration) {
        table_remove(&mut self.failures, node);
        table_set(&mut self.candidate_rtts, node, rtt);
    }

    /// Records a failure; blacklists the node after
    /// `blacklist_after` consecutive failures.
    pub fn record_failure(&mut self, now: SimTime, node: NodeId) {
        let count = match table_search(&self.failures, node) {
            Ok(i) => {
                self.failures[i].1 += 1;
                self.failures[i].1
            }
            Err(i) => {
                self.failures.insert(i, (node, 1));
                1
            }
        };
        if count >= self.cfg.blacklist_after {
            table_set(&mut self.blacklist, node, now + self.cfg.blacklist_duration);
            table_remove(&mut self.failures, node);
            table_remove(&mut self.candidate_rtts, node);
        }
    }

    /// Whether a node is currently blacklisted.
    pub fn is_blacklisted(&mut self, now: SimTime, node: NodeId) -> bool {
        self.expire_blacklist(now);
        table_search(&self.blacklist, node).is_ok()
    }

    /// Currently blacklisted nodes, in ascending node-id order — the
    /// iteration-order contract regression tests pin.
    pub fn blacklisted_nodes(&self) -> Vec<NodeId> {
        self.blacklist.iter().map(|&(n, _)| n).collect()
    }

    fn expire_blacklist(&mut self, now: SimTime) {
        self.blacklist.retain(|&(_, expiry)| expiry > now);
    }

    /// The §4.2.1 switching rule: switch when the current publisher's
    /// RTT exceeds the best candidate's RTT plus the switching cost.
    ///
    /// `candidates` carries fresh RTT measurements for the scheduler's
    /// current candidate list (the client refreshes these periodically).
    pub fn assess_switch(
        &mut self,
        now: SimTime,
        current: NodeId,
        current_rtt: SimDuration,
        candidates: &[(NodeId, SimDuration)],
    ) -> SwitchDecision {
        self.expire_blacklist(now);
        for &(n, rtt) in candidates {
            table_set(&mut self.candidate_rtts, n, rtt);
        }
        let best = candidates
            .iter()
            .filter(|&&(n, _)| n != current && table_search(&self.blacklist, n).is_err())
            .min_by_key(|(_, rtt)| *rtt);
        match best {
            Some(&(node, rtt)) if current_rtt > rtt + self.cfg.t_change => {
                SwitchDecision::SwitchTo(node)
            }
            _ => SwitchDecision::Stay,
        }
    }

    /// Last known RTT for a node, if measured.
    pub fn known_rtt(&self, node: NodeId) -> Option<SimDuration> {
        table_search(&self.candidate_rtts, node)
            .ok()
            .map(|i| self.candidate_rtts[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> ClientController {
        ClientController::new(ClientControllerConfig::default())
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn probe_list_limited_to_three() {
        let mut c = controller();
        let candidates: Vec<NodeId> = (0..10).map(NodeId).collect();
        let probes = c.probe_list(SimTime::ZERO, &candidates);
        assert_eq!(probes.len(), 3);
        assert_eq!(probes, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn first_successful_responder_wins() {
        let mut c = controller();
        let outcomes = [
            ProbeOutcome {
                node: NodeId(1),
                rtt: None,
            },
            ProbeOutcome {
                node: NodeId(2),
                rtt: Some(ms(30)),
            },
            ProbeOutcome {
                node: NodeId(3),
                rtt: Some(ms(10)),
            },
        ];
        assert_eq!(
            c.select_from_probes(SimTime::ZERO, &outcomes),
            Some(NodeId(3))
        );
    }

    #[test]
    fn all_probes_failing_returns_none() {
        let mut c = controller();
        let outcomes = [
            ProbeOutcome {
                node: NodeId(1),
                rtt: None,
            },
            ProbeOutcome {
                node: NodeId(2),
                rtt: None,
            },
        ];
        assert_eq!(c.select_from_probes(SimTime::ZERO, &outcomes), None);
    }

    #[test]
    fn switching_rule_requires_margin() {
        let mut c = controller();
        let current = NodeId(1);
        // Candidate is 10ms better but t_change is 60ms: stay.
        let d = c.assess_switch(SimTime::ZERO, current, ms(50), &[(NodeId(2), ms(40))]);
        assert_eq!(d, SwitchDecision::Stay);
        // Candidate is 100ms better: switch.
        let d = c.assess_switch(SimTime::ZERO, current, ms(150), &[(NodeId(2), ms(40))]);
        assert_eq!(d, SwitchDecision::SwitchTo(NodeId(2)));
    }

    #[test]
    fn switch_targets_minimum_rtt_candidate() {
        let mut c = controller();
        let d = c.assess_switch(
            SimTime::ZERO,
            NodeId(1),
            ms(500),
            &[
                (NodeId(2), ms(100)),
                (NodeId(3), ms(50)),
                (NodeId(4), ms(80)),
            ],
        );
        assert_eq!(d, SwitchDecision::SwitchTo(NodeId(3)));
    }

    #[test]
    fn current_publisher_not_a_switch_target() {
        let mut c = controller();
        let d = c.assess_switch(SimTime::ZERO, NodeId(1), ms(500), &[(NodeId(1), ms(10))]);
        assert_eq!(d, SwitchDecision::Stay);
    }

    #[test]
    fn blacklist_after_consecutive_failures() {
        let mut c = controller();
        let t = SimTime::from_secs(1);
        for _ in 0..3 {
            c.record_failure(t, NodeId(5));
        }
        assert!(c.is_blacklisted(t, NodeId(5)));
        // Blacklisted nodes are excluded from probe lists and switches.
        let probes = c.probe_list(t, &[NodeId(5), NodeId(6)]);
        assert_eq!(probes, vec![NodeId(6)]);
        let d = c.assess_switch(t, NodeId(1), ms(500), &[(NodeId(5), ms(1))]);
        assert_eq!(d, SwitchDecision::Stay);
    }

    #[test]
    fn success_resets_failure_count() {
        let mut c = controller();
        let t = SimTime::from_secs(1);
        c.record_failure(t, NodeId(5));
        c.record_failure(t, NodeId(5));
        c.record_success(NodeId(5), ms(20));
        c.record_failure(t, NodeId(5));
        assert!(!c.is_blacklisted(t, NodeId(5)));
    }

    #[test]
    fn blacklist_expires() {
        let mut c = controller();
        let t0 = SimTime::from_secs(1);
        for _ in 0..3 {
            c.record_failure(t0, NodeId(5));
        }
        assert!(c.is_blacklisted(t0, NodeId(5)));
        let later = t0 + SimDuration::from_secs(121);
        assert!(!c.is_blacklisted(later, NodeId(5)));
    }

    /// Regression: node-keyed state must iterate in a deterministic
    /// order regardless of insertion order. The `HashMap`s this state
    /// used to live in iterate in randomized order, which would let
    /// replay-sensitive consumers diverge between identical runs.
    #[test]
    fn node_tables_iterate_in_ascending_node_order() {
        let t = SimTime::from_secs(1);
        // Blacklist the same node set through two different insertion
        // orders; the observable order must be identical (ascending).
        let orders: [&[u64]; 2] = [&[9, 2, 17, 5], &[5, 17, 2, 9]];
        let mut seen = Vec::new();
        for order in orders {
            let mut c = controller();
            for &n in order {
                for _ in 0..3 {
                    c.record_failure(t, NodeId(n));
                }
            }
            seen.push(c.blacklisted_nodes());
        }
        assert_eq!(seen[0], seen[1], "order must not depend on insertion");
        assert_eq!(
            seen[0],
            vec![NodeId(2), NodeId(5), NodeId(9), NodeId(17)],
            "ascending node id"
        );
    }

    #[test]
    fn known_rtt_tracked() {
        let mut c = controller();
        assert_eq!(c.known_rtt(NodeId(1)), None);
        c.record_success(NodeId(1), ms(25));
        assert_eq!(c.known_rtt(NodeId(1)), Some(ms(25)));
    }
}
