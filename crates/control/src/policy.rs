//! Pluggable scheduler scoring policies.
//!
//! [`GlobalScheduler`](crate::scheduler::GlobalScheduler) ranks
//! candidates with the static personalised score
//! `S = α₁N + α₂G + α₃R + α₄B` (see [`crate::scoring`]). This module
//! extracts the seam that makes that ranking swappable: a
//! [`SchedulerPolicy`] adjusts each candidate's availability score
//! before the cost divide and may consume deterministic feedback about
//! node behaviour.
//!
//! Two policies ship today:
//!
//! - [`StaticScorePolicy`] — the identity adjustment. Byte-identical to
//!   the pre-seam scheduler (proven by the golden digests).
//! - [`AdaptivePolicy`] — a telemetry-driven feedback loop. Recovery
//!   outcomes and candidate-probe results attributed to a node are
//!   aggregated into fixed-width tumbling **sim-time** windows (the same
//!   window arithmetic the obs layer uses; wall clock never enters any
//!   decision). When a node's window looks bad — recovery failure rate
//!   above [`AdaptiveConfig::demote_threshold`] or probe yield below
//!   [`AdaptiveConfig::yield_threshold`] — for
//!   [`AdaptiveConfig::hysteresis`] consecutive judged windows, its
//!   multiplicative score factor is demoted (bounded below by
//!   [`AdaptiveConfig::floor`]); sustained good windows boost it back
//!   towards 1.0, so a node can recover.
//!
//! Determinism: a policy never draws randomness and never reads wall
//! clock. Its state is a pure function of the (sim-time-ordered)
//! feedback call sequence, which itself is a pure function of the world
//! seed — so adaptive worlds stay byte-identical across the
//! `--jobs × --world-jobs` grid.

use crate::features::NodeId;
use rlive_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which scoring policy a [`GlobalScheduler`](crate::scheduler::GlobalScheduler)
/// runs. Selected via `SystemConfig` / the `--sched-policy` CLI flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerPolicyKind {
    /// The static `S = α₁N + α₂G + α₃R + α₄B` score, unmodified.
    #[default]
    Static,
    /// Static score times a per-node factor learned from windowed
    /// recovery/probe feedback.
    Adaptive,
}

impl SchedulerPolicyKind {
    /// Parses a CLI label (`static` / `adaptive`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "static" => Some(SchedulerPolicyKind::Static),
            "adaptive" => Some(SchedulerPolicyKind::Adaptive),
            _ => None,
        }
    }

    /// The CLI label.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerPolicyKind::Static => "static",
            SchedulerPolicyKind::Adaptive => "adaptive",
        }
    }
}

/// Tuning of [`AdaptivePolicy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Tumbling feedback window width (sim time). Should match the obs
    /// layer's `obs_window_ms` so scheduler feedback and exported
    /// series describe the same windows.
    pub window: SimDuration,
    /// Minimum feedback samples (recovery outcomes + probes) in a
    /// window before the node is judged at all.
    pub min_samples: u64,
    /// A window with recovery failure rate above this is bad.
    pub demote_threshold: f64,
    /// A window with candidate-probe yield below this is bad.
    pub yield_threshold: f64,
    /// Consecutive bad (good) judged windows before the factor is
    /// demoted (boosted). Absorbs one-window blips.
    pub hysteresis: u32,
    /// Multiplicative demotion per trip (< 1).
    pub demote_factor: f64,
    /// Multiplicative recovery per trip (> 1), capped at 1.0.
    pub boost_factor: f64,
    /// Lowest factor a node can be demoted to (> 0 so a demoted node
    /// keeps receiving probe traffic and can prove itself again).
    pub floor: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: SimDuration::from_millis(1_000),
            min_samples: 2,
            demote_threshold: 0.5,
            yield_threshold: 0.35,
            hysteresis: 2,
            demote_factor: 0.5,
            boost_factor: 1.3,
            floor: 0.25,
        }
    }
}

/// The policy seam: adjusts candidate availability scores and absorbs
/// deterministic per-node feedback.
///
/// All feedback calls carry sim time; implementations bucket by
/// tumbling window and must stay pure functions of the call sequence
/// (no randomness, no wall clock). `advance` is invoked by the
/// scheduler before each recommendation so window bookkeeping rolls
/// forward even on feedback-quiet paths.
pub trait SchedulerPolicy: Send {
    /// Stable label for reports (`static` / `adaptive`).
    fn label(&self) -> &'static str;

    /// Adjusts one candidate's availability score before the cost
    /// divide. [`StaticScorePolicy`] returns `availability` unchanged.
    fn adjust(&self, node: NodeId, availability: f64) -> f64;

    /// Rolls window bookkeeping forward to `now`.
    fn advance(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Feeds one recovery-attempt outcome attributed to `node` (the
    /// best-effort relay serving the recovered frame's substream).
    fn note_recovery(&mut self, now: SimTime, node: NodeId, success: bool) {
        let _ = (now, node, success);
    }

    /// Feeds one candidate-probe outcome for `node` (whether the probed
    /// relay was online, admitting and traversable).
    fn note_probe(&mut self, now: SimTime, node: NodeId, usable: bool) {
        let _ = (now, node, usable);
    }

    /// Demotions applied so far, keyed by the window they were judged
    /// in. Empty for policies that never demote.
    fn demotions_by_window(&self) -> BTreeMap<u64, u64> {
        BTreeMap::new()
    }
}

/// The pre-seam behaviour: candidate scores pass through unmodified and
/// feedback is discarded.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticScorePolicy;

impl SchedulerPolicy for StaticScorePolicy {
    fn label(&self) -> &'static str {
        "static"
    }

    fn adjust(&self, _node: NodeId, availability: f64) -> f64 {
        availability
    }
}

/// Per-node feedback accumulated in the current window.
#[derive(Debug, Clone, Copy, Default)]
struct WindowFeedback {
    recovery_failures: u64,
    recovery_outcomes: u64,
    probes_usable: u64,
    probes: u64,
}

/// Per-node factor state carried across windows.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    factor: f64,
    bad_streak: u32,
    good_streak: u32,
}

impl Default for NodeState {
    fn default() -> Self {
        NodeState {
            factor: 1.0,
            bad_streak: 0,
            good_streak: 0,
        }
    }
}

/// The telemetry-driven feedback policy (see module docs).
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    cfg: AdaptiveConfig,
    /// Window the pending feedback belongs to.
    current_window: u64,
    pending: BTreeMap<NodeId, WindowFeedback>,
    state: BTreeMap<NodeId, NodeState>,
    demotions: BTreeMap<u64, u64>,
    boosts: u64,
}

impl AdaptivePolicy {
    /// Creates the policy with the given tuning.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        assert!(cfg.window > SimDuration::ZERO, "window must be positive");
        assert!(
            cfg.floor > 0.0 && cfg.floor <= 1.0,
            "floor must be in (0, 1]"
        );
        assert!(
            cfg.demote_factor > 0.0 && cfg.demote_factor < 1.0,
            "demote_factor must be in (0, 1)"
        );
        assert!(cfg.boost_factor >= 1.0, "boost_factor must be >= 1");
        AdaptivePolicy {
            cfg,
            current_window: 0,
            pending: BTreeMap::new(),
            state: BTreeMap::new(),
            demotions: BTreeMap::new(),
            boosts: 0,
        }
    }

    /// Current multiplicative factor of a node (1.0 if never judged).
    pub fn factor(&self, node: NodeId) -> f64 {
        self.state.get(&node).map(|s| s.factor).unwrap_or(1.0)
    }

    /// Boosts applied so far.
    pub fn boost_count(&self) -> u64 {
        self.boosts
    }

    fn window_of(&self, at: SimTime) -> u64 {
        at.as_millis() / self.cfg.window.as_millis().max(1)
    }

    /// Judges every node that produced feedback in `window` and applies
    /// factor moves. Nodes with no feedback keep their state untouched
    /// (an idle window proves nothing either way).
    fn fold_window(&mut self, window: u64) {
        let pending = std::mem::take(&mut self.pending);
        for (node, fb) in pending {
            if fb.recovery_outcomes + fb.probes < self.cfg.min_samples {
                continue;
            }
            let failure_rate = if fb.recovery_outcomes > 0 {
                fb.recovery_failures as f64 / fb.recovery_outcomes as f64
            } else {
                0.0
            };
            let probe_yield = if fb.probes > 0 {
                fb.probes_usable as f64 / fb.probes as f64
            } else {
                1.0
            };
            let bad =
                failure_rate > self.cfg.demote_threshold || probe_yield < self.cfg.yield_threshold;
            let st = self.state.entry(node).or_default();
            if bad {
                st.bad_streak += 1;
                st.good_streak = 0;
                if st.bad_streak >= self.cfg.hysteresis {
                    let next = (st.factor * self.cfg.demote_factor).max(self.cfg.floor);
                    if next < st.factor {
                        st.factor = next;
                        *self.demotions.entry(window).or_insert(0) += 1;
                    }
                }
            } else {
                st.good_streak += 1;
                st.bad_streak = 0;
                if st.good_streak >= self.cfg.hysteresis && st.factor < 1.0 {
                    st.factor = (st.factor * self.cfg.boost_factor).min(1.0);
                    self.boosts += 1;
                }
            }
        }
    }

    fn roll_to(&mut self, now: SimTime) {
        let w = self.window_of(now);
        if w > self.current_window {
            // Only the current window can hold pending feedback;
            // intermediate empty windows judge nobody.
            self.fold_window(self.current_window);
            self.current_window = w;
        }
    }

    fn feedback_mut(&mut self, now: SimTime, node: NodeId) -> &mut WindowFeedback {
        self.roll_to(now);
        self.pending.entry(node).or_default()
    }
}

impl SchedulerPolicy for AdaptivePolicy {
    fn label(&self) -> &'static str {
        "adaptive"
    }

    fn adjust(&self, node: NodeId, availability: f64) -> f64 {
        availability * self.factor(node)
    }

    fn advance(&mut self, now: SimTime) {
        self.roll_to(now);
    }

    fn note_recovery(&mut self, now: SimTime, node: NodeId, success: bool) {
        let fb = self.feedback_mut(now, node);
        fb.recovery_outcomes += 1;
        if !success {
            fb.recovery_failures += 1;
        }
    }

    fn note_probe(&mut self, now: SimTime, node: NodeId, usable: bool) {
        let fb = self.feedback_mut(now, node);
        fb.probes += 1;
        if usable {
            fb.probes_usable += 1;
        }
    }

    fn demotions_by_window(&self) -> BTreeMap<u64, u64> {
        self.demotions.clone()
    }
}

/// Builds the boxed policy for a kind.
pub fn build_policy(
    kind: SchedulerPolicyKind,
    adaptive: &AdaptiveConfig,
) -> Box<dyn SchedulerPolicy> {
    match kind {
        SchedulerPolicyKind::Static => Box::new(StaticScorePolicy),
        SchedulerPolicyKind::Adaptive => Box::new(AdaptivePolicy::new(adaptive.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn failing_window(p: &mut AdaptivePolicy, window: u64, node: NodeId) {
        // Two failed recovery outcomes inside `window` (min_samples 2).
        let t = at(window * 1_000 + 10);
        p.note_recovery(t, node, false);
        p.note_recovery(t, node, false);
    }

    fn healthy_window(p: &mut AdaptivePolicy, window: u64, node: NodeId) {
        let t = at(window * 1_000 + 10);
        p.note_probe(t, node, true);
        p.note_probe(t, node, true);
    }

    #[test]
    fn static_policy_is_identity() {
        let p = StaticScorePolicy;
        for v in [0.0, 0.37, 1.0, f64::MAX] {
            assert_eq!(p.adjust(NodeId(3), v).to_bits(), v.to_bits());
        }
        assert!(p.demotions_by_window().is_empty());
        assert_eq!(p.label(), "static");
    }

    #[test]
    fn hysteresis_requires_consecutive_bad_windows() {
        let mut p = AdaptivePolicy::new(AdaptiveConfig::default());
        let n = NodeId(1);
        failing_window(&mut p, 0, n);
        p.advance(at(1_000));
        // One bad window: streak 1 < hysteresis 2, factor unchanged.
        assert_eq!(p.factor(n), 1.0);
        failing_window(&mut p, 1, n);
        p.advance(at(2_000));
        assert_eq!(p.factor(n), 0.5);
        assert_eq!(p.demotions_by_window().get(&1), Some(&1));
    }

    #[test]
    fn good_window_resets_bad_streak() {
        let mut p = AdaptivePolicy::new(AdaptiveConfig::default());
        let n = NodeId(1);
        failing_window(&mut p, 0, n);
        healthy_window(&mut p, 1, n);
        failing_window(&mut p, 2, n);
        p.advance(at(3_000));
        // Bad, good, bad: never two consecutive bad windows.
        assert_eq!(p.factor(n), 1.0);
        assert!(p.demotions_by_window().is_empty());
    }

    #[test]
    fn factor_is_floored_and_recovers() {
        let mut p = AdaptivePolicy::new(AdaptiveConfig::default());
        let n = NodeId(4);
        // Many consecutive bad windows: factor bottoms out at the floor.
        for w in 0..10 {
            failing_window(&mut p, w, n);
        }
        p.advance(at(10_000));
        assert_eq!(p.factor(n), 0.25);
        let demoted: u64 = p.demotions_by_window().values().sum();
        // 1.0 -> 0.5 -> 0.25, then pinned at the floor (no counted
        // demotion once the factor cannot move).
        assert_eq!(demoted, 2);
        // Sustained good windows boost it back to 1.0.
        for w in 10..20 {
            healthy_window(&mut p, w, n);
        }
        p.advance(at(20_000));
        assert_eq!(p.factor(n), 1.0);
        assert!(p.boost_count() >= 4);
    }

    #[test]
    fn adjust_applies_current_factor() {
        let mut p = AdaptivePolicy::new(AdaptiveConfig::default());
        let n = NodeId(9);
        failing_window(&mut p, 0, n);
        failing_window(&mut p, 1, n);
        p.advance(at(2_000));
        assert_eq!(p.adjust(n, 0.8), 0.8 * 0.5);
        // Unjudged nodes pass through unchanged.
        assert_eq!(p.adjust(NodeId(777), 0.8), 0.8);
    }

    #[test]
    fn sparse_windows_are_not_judged() {
        let mut p = AdaptivePolicy::new(AdaptiveConfig::default());
        let n = NodeId(2);
        // One sample per window: below min_samples, never judged.
        for w in 0..5 {
            p.note_recovery(at(w * 1_000 + 1), n, false);
        }
        p.advance(at(6_000));
        assert_eq!(p.factor(n), 1.0);
    }

    #[test]
    fn probe_yield_alone_can_demote() {
        let mut p = AdaptivePolicy::new(AdaptiveConfig::default());
        let n = NodeId(6);
        for w in 0..2 {
            let t = at(w * 1_000 + 5);
            p.note_probe(t, n, false);
            p.note_probe(t, n, false);
            p.note_probe(t, n, false);
        }
        p.advance(at(2_000));
        assert_eq!(p.factor(n), 0.5);
    }

    #[test]
    fn feedback_sequence_is_deterministic() {
        let run = || {
            let mut p = AdaptivePolicy::new(AdaptiveConfig::default());
            for w in 0..8u64 {
                for node in [NodeId(1), NodeId(2), NodeId(3)] {
                    let t = at(w * 1_000 + node.0 * 7);
                    p.note_recovery(t, node, node.0 % 2 == 0);
                    p.note_probe(t, node, w % 3 != 0);
                }
            }
            p.advance(at(9_000));
            (
                p.factor(NodeId(1)),
                p.factor(NodeId(2)),
                p.factor(NodeId(3)),
                p.demotions_by_window(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in [SchedulerPolicyKind::Static, SchedulerPolicyKind::Adaptive] {
            assert_eq!(SchedulerPolicyKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(SchedulerPolicyKind::parse("greedy"), None);
        assert_eq!(SchedulerPolicyKind::default(), SchedulerPolicyKind::Static);
    }
}
