//! RLive collaborative control plane (§4 of the paper).
//!
//! User-to-node mapping in RLive is performed by three layers with
//! different views and update timescales:
//!
//! - the **global scheduler** ([`scheduler`]) sees static and
//!   second-granularity temporal attributes of every node (via
//!   lightweight heartbeats, [`features`]), retrieves candidates from a
//!   tree-based hash structure with progressive relaxation
//!   ([`registry`]), and ranks them with a personalised score
//!   ([`scoring`]);
//! - the **client controller** ([`client`]) probes candidates at
//!   millisecond granularity, picks the first responder, and switches
//!   publishers when `RTT_cur > min_i(RTT_i + t_change)`;
//! - the **edge adviser** ([`adviser`]) aggregates subscriber reports at
//!   hundred-millisecond granularity and proactively suggests switches
//!   on cost (under-utilisation) or QoS (per-connection Z-score
//!   outliers) triggers.
//!
//! Quota-based availability (§8.1) lives in [`quota`]; scheduler fleet
//! sizing for the paper's multi-MQPS load (Fig 12c) in [`capacity`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adviser;
pub mod capacity;
pub mod client;
pub mod features;
pub mod policy;
pub mod quota;
pub mod registry;
pub mod scheduler;
pub mod scoring;

pub use adviser::{AdviserConfig, EdgeAdviser, SwitchSuggestion};
pub use client::{ClientController, ClientControllerConfig, ProbeOutcome};
pub use features::{ClientInfo, NodeClass, NodeId, NodeStatus, StaticFeatures, StreamKey};
pub use policy::{
    AdaptiveConfig, AdaptivePolicy, SchedulerPolicy, SchedulerPolicyKind, StaticScorePolicy,
};
pub use registry::HashTreeRegistry;
pub use scheduler::{GlobalScheduler, SchedulerConfig};
pub use scoring::{Platform, ScoreWeights};
