//! The edge adviser (§4.2.2).
//!
//! Best-effort nodes complement client-side control with proactive
//! switch suggestions driven by two triggers:
//!
//! - **Cost-aware**: when the node's sliding-average resource
//!   utilisation `ū_node` falls below a threshold θ, and a double-check
//!   with the global scheduler confirms the forwarding stream's average
//!   utilisation `ū_stream` is also below θ, the node suggests its
//!   clients move away so the stream consolidates onto fewer relays,
//!   cutting back-to-CDN traffic. Re-evaluated every 10 s.
//! - **QoS-aware**: the node computes per-connection Z-scores
//!   `z = (x − μ)/σ` of a QoS metric across all its connections and
//!   flags the worst ~5 % as outliers (isolated link problems the node
//!   can spot before the client).

use crate::features::{ClientId, NodeId, StreamKey};
use rlive_sim::trace::{TraceEvent, TraceSink};
use rlive_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Adviser configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdviserConfig {
    /// Under-utilisation threshold θ.
    pub util_threshold: f64,
    /// Width of the sliding utilisation window.
    pub util_window: usize,
    /// Re-evaluation interval (deployed: 10 s).
    pub evaluate_interval: SimDuration,
    /// Fraction of connections flagged as QoS outliers (deployed: 5 %).
    pub outlier_fraction: f64,
    /// Minimum connections before Z-scores are meaningful.
    pub min_connections: usize,
}

impl Default for AdviserConfig {
    fn default() -> Self {
        AdviserConfig {
            util_threshold: 0.3,
            util_window: 6,
            evaluate_interval: SimDuration::from_secs(10),
            outlier_fraction: 0.05,
            min_connections: 8,
        }
    }
}

/// A proactive suggestion emitted by the adviser.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SwitchSuggestion {
    /// Cost trigger: the node is underutilised; subscribers of the given
    /// substream should consider consolidating elsewhere.
    CostConsolidation {
        /// The underutilised node.
        node: NodeId,
        /// The affected substream.
        key: StreamKey,
    },
    /// QoS trigger: specific clients see outlier-bad quality through
    /// this node and should re-map.
    QosOutlier {
        /// The node observing the outliers.
        node: NodeId,
        /// Affected clients with their Z-scores.
        clients: Vec<(ClientId, f64)>,
    },
}

/// Per-node adviser state.
///
/// # Examples
///
/// ```
/// use rlive_control::adviser::{AdviserConfig, EdgeAdviser, SwitchSuggestion};
/// use rlive_control::features::{NodeId, StreamKey};
/// use rlive_sim::SimTime;
///
/// let mut adviser = EdgeAdviser::new(NodeId(3), AdviserConfig::default());
/// for _ in 0..6 {
///     adviser.record_utilization(0.1); // persistently underutilised
/// }
/// let key = StreamKey { stream_id: 1, substream: 0 };
/// // The scheduler confirms the whole stream is underutilised too.
/// let suggestions = adviser.evaluate(SimTime::from_secs(10), key, Some(0.15));
/// assert!(matches!(
///     suggestions.as_slice(),
///     [SwitchSuggestion::CostConsolidation { .. }]
/// ));
/// ```
pub struct EdgeAdviser {
    cfg: AdviserConfig,
    node: NodeId,
    /// Sliding window of recent utilisation samples.
    util_window: Vec<f64>,
    /// Latest QoS metric (e.g. smoothed RTT in ms) per connection.
    connection_qos: HashMap<ClientId, f64>,
    last_evaluation: SimTime,
    /// Structured trace sink (disabled by default): cost and QoS
    /// triggers are emitted when they fire.
    trace: TraceSink,
}

impl EdgeAdviser {
    /// Creates an adviser for `node`.
    pub fn new(node: NodeId, cfg: AdviserConfig) -> Self {
        EdgeAdviser {
            cfg,
            node,
            util_window: Vec::new(),
            connection_qos: HashMap::new(),
            last_evaluation: SimTime::ZERO,
            trace: TraceSink::disabled(),
        }
    }

    /// Attaches a structured trace sink for trigger events.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The node this adviser belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Feeds one utilisation sample into the sliding window.
    pub fn record_utilization(&mut self, util: f64) {
        self.util_window.push(util.clamp(0.0, 1.0));
        if self.util_window.len() > self.cfg.util_window {
            self.util_window.remove(0);
        }
    }

    /// The sliding-average utilisation `ū_node`.
    pub fn sliding_utilization(&self) -> f64 {
        if self.util_window.is_empty() {
            0.0
        } else {
            self.util_window.iter().sum::<f64>() / self.util_window.len() as f64
        }
    }

    /// Updates the QoS metric of one subscriber connection.
    pub fn record_connection_qos(&mut self, client: ClientId, metric: f64) {
        self.connection_qos.insert(client, metric);
    }

    /// Removes a departed subscriber.
    pub fn remove_connection(&mut self, client: ClientId) {
        self.connection_qos.remove(&client);
    }

    /// Number of tracked connections.
    pub fn connection_count(&self) -> usize {
        self.connection_qos.len()
    }

    /// Whether the evaluation interval has elapsed.
    pub fn due(&self, now: SimTime) -> bool {
        now.saturating_since(self.last_evaluation) >= self.cfg.evaluate_interval
    }

    /// Runs one evaluation round. `stream_util` is the scheduler-supplied
    /// `ū_stream` double-check for the substream this node forwards (the
    /// cost trigger only fires when *both* fall below θ); `key` names
    /// that substream.
    pub fn evaluate(
        &mut self,
        now: SimTime,
        key: StreamKey,
        stream_util: Option<f64>,
    ) -> Vec<SwitchSuggestion> {
        self.last_evaluation = now;
        let mut out = Vec::new();

        // Cost-aware trigger.
        let u_node = self.sliding_utilization();
        if self.util_window.len() >= self.cfg.util_window && u_node < self.cfg.util_threshold {
            if let Some(u_stream) = stream_util {
                if u_stream < self.cfg.util_threshold {
                    self.trace.emit(
                        now,
                        None,
                        TraceEvent::AdviserCostTrigger {
                            node: self.node.0,
                            node_util: u_node,
                            stream_util: u_stream,
                        },
                    );
                    out.push(SwitchSuggestion::CostConsolidation {
                        node: self.node,
                        key,
                    });
                }
            }
        }

        // QoS-aware trigger.
        if let Some(outliers) = self.qos_outliers() {
            if !outliers.is_empty() {
                self.trace.emit(
                    now,
                    None,
                    TraceEvent::AdviserQosTrigger {
                        node: self.node.0,
                        outliers: outliers.len() as u32,
                    },
                );
                out.push(SwitchSuggestion::QosOutlier {
                    node: self.node,
                    clients: outliers,
                });
            }
        }
        out
    }

    /// Computes Z-scores and returns the worst `outlier_fraction` of
    /// connections whose Z-score is positive (bad = above-mean metric).
    /// Returns `None` if too few connections are attached.
    fn qos_outliers(&self) -> Option<Vec<(ClientId, f64)>> {
        let n = self.connection_qos.len();
        if n < self.cfg.min_connections {
            return None;
        }
        let mean = self.connection_qos.values().sum::<f64>() / n as f64;
        let var = self
            .connection_qos
            .values()
            .map(|x| (x - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let sd = var.sqrt();
        if sd <= f64::EPSILON {
            return Some(Vec::new());
        }
        let mut scored: Vec<(ClientId, f64)> = self
            .connection_qos
            .iter()
            .map(|(&c, &x)| (c, (x - mean) / sd))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite z-scores"));
        let take = ((n as f64 * self.cfg.outlier_fraction).ceil() as usize).max(1);
        Some(
            scored
                .into_iter()
                .take(take)
                .filter(|(_, z)| *z > 1.0)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> StreamKey {
        StreamKey {
            stream_id: 1,
            substream: 0,
        }
    }

    fn adviser() -> EdgeAdviser {
        EdgeAdviser::new(NodeId(7), AdviserConfig::default())
    }

    fn fill_util(a: &mut EdgeAdviser, util: f64) {
        for _ in 0..6 {
            a.record_utilization(util);
        }
    }

    #[test]
    fn cost_trigger_needs_both_conditions() {
        let mut a = adviser();
        fill_util(&mut a, 0.1);
        // Node underutilised but stream busy: no suggestion.
        let s = a.evaluate(SimTime::from_secs(10), key(), Some(0.8));
        assert!(s.is_empty());
        // Node and stream both underutilised: suggestion fires.
        let s = a.evaluate(SimTime::from_secs(20), key(), Some(0.1));
        assert_eq!(
            s,
            vec![SwitchSuggestion::CostConsolidation {
                node: NodeId(7),
                key: key()
            }]
        );
    }

    #[test]
    fn cost_trigger_silent_when_busy() {
        let mut a = adviser();
        fill_util(&mut a, 0.7);
        let s = a.evaluate(SimTime::from_secs(10), key(), Some(0.1));
        assert!(s.is_empty());
    }

    #[test]
    fn cost_trigger_needs_full_window() {
        let mut a = adviser();
        a.record_utilization(0.05);
        let s = a.evaluate(SimTime::from_secs(10), key(), Some(0.05));
        assert!(s.is_empty(), "fires with only one sample");
    }

    #[test]
    fn sliding_average_windows() {
        let mut a = adviser();
        for u in [1.0, 1.0, 1.0, 1.0, 1.0, 1.0] {
            a.record_utilization(u);
        }
        for _ in 0..6 {
            a.record_utilization(0.0);
        }
        assert_eq!(a.sliding_utilization(), 0.0, "old samples evicted");
    }

    #[test]
    fn qos_outlier_detection() {
        let mut a = adviser();
        // 19 healthy connections around 50 ms, one terrible at 500 ms.
        for i in 0..19 {
            a.record_connection_qos(ClientId(i), 50.0 + i as f64);
        }
        a.record_connection_qos(ClientId(99), 500.0);
        let s = a.evaluate(SimTime::from_secs(10), key(), Some(0.9));
        assert_eq!(s.len(), 1);
        match &s[0] {
            SwitchSuggestion::QosOutlier { node, clients } => {
                assert_eq!(*node, NodeId(7));
                assert_eq!(clients.len(), 1);
                assert_eq!(clients[0].0, ClientId(99));
                assert!(clients[0].1 > 3.0, "z {}", clients[0].1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn homogeneous_qos_yields_no_outliers() {
        let mut a = adviser();
        for i in 0..20 {
            a.record_connection_qos(ClientId(i), 50.0);
        }
        let s = a.evaluate(SimTime::from_secs(10), key(), Some(0.9));
        assert!(s.is_empty());
    }

    #[test]
    fn too_few_connections_no_zscore() {
        let mut a = adviser();
        for i in 0..5 {
            a.record_connection_qos(ClientId(i), 50.0);
        }
        a.record_connection_qos(ClientId(9), 5000.0);
        let s = a.evaluate(SimTime::from_secs(10), key(), Some(0.9));
        assert!(s.is_empty(), "z-score fired with too few connections");
    }

    #[test]
    fn evaluation_cadence() {
        let mut a = adviser();
        assert!(a.due(SimTime::from_secs(10)));
        a.evaluate(SimTime::from_secs(10), key(), None);
        assert!(!a.due(SimTime::from_secs(15)));
        assert!(a.due(SimTime::from_secs(20)));
    }

    #[test]
    fn connection_removal() {
        let mut a = adviser();
        a.record_connection_qos(ClientId(1), 10.0);
        assert_eq!(a.connection_count(), 1);
        a.remove_connection(ClientId(1));
        assert_eq!(a.connection_count(), 0);
    }
}
