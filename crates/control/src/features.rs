//! Node and client feature model plus heartbeat status updates.
//!
//! The global scheduler avoids noisy, highly dynamic signals and tracks
//! two feature categories (§4.1.1): *static* features (location, ISP,
//! node type, connection type) and *temporal* features (bandwidth
//! utilisation, connection success rate). Nodes send lightweight
//! (~150 B) updates every 5 s while forwarding streams and every 10 s
//! when idle.

use rlive_sim::nat::NatType;
use rlive_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Identifies an edge node (dedicated or best-effort).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u64);

/// Identifies a client (viewer device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClientId(pub u64);

/// Identifies one substream of one stream — the unit of user mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamKey {
    /// The live stream.
    pub stream_id: u64,
    /// The substream index within the stream.
    pub substream: u16,
}

/// Whether a node is in the "high quality" tier (top capacity/stability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeClass {
    /// Top-ranked nodes by bandwidth capability and stability — the only
    /// tier the strawman single-source design used (§2.2).
    HighQuality,
    /// Everything else.
    Normal,
}

/// The access technology of a node's uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConnectionType {
    /// Wired fibre uplink (e.g. ISP facility).
    Fiber,
    /// Cable/DSL uplink (e.g. apartment gateway).
    Cable,
    /// Cellular or fixed-wireless uplink.
    Wireless,
}

/// Inherent attributes of a node; change rarely if ever.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticFeatures {
    /// Autonomous-system/ISP identifier.
    pub isp: u16,
    /// Coarse geographic region (e.g. province/metro).
    pub region: u16,
    /// BGP prefix group; clients in the same group are "same network".
    pub bgp_prefix: u32,
    /// Geographic coordinates for proximity scoring (degrees).
    pub geo: (f64, f64),
    /// Quality tier.
    pub class: NodeClass,
    /// Uplink technology.
    pub conn_type: ConnectionType,
    /// NAT behaviour.
    pub nat: NatType,
}

/// Temporal features carried in heartbeats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeStatus {
    /// Uplink capacity in Mbps, as currently advertised.
    pub capacity_mbps: f64,
    /// Uplink bandwidth currently in use, Mbps.
    pub used_mbps: f64,
    /// Recent connection success rate observed at the node.
    pub conn_success_rate: f64,
    /// Substreams the node is currently forwarding.
    pub forwarding: BTreeSet<StreamKey>,
    /// Number of attached subscribers.
    pub subscribers: u32,
}

impl NodeStatus {
    /// A fresh idle status.
    pub fn idle(capacity_mbps: f64) -> Self {
        NodeStatus {
            capacity_mbps,
            used_mbps: 0.0,
            conn_success_rate: 1.0,
            forwarding: BTreeSet::new(),
            subscribers: 0,
        }
    }

    /// Residual (unused) bandwidth in Mbps.
    pub fn residual_mbps(&self) -> f64 {
        (self.capacity_mbps - self.used_mbps).max(0.0)
    }

    /// Bandwidth utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_mbps <= 0.0 {
            0.0
        } else {
            (self.used_mbps / self.capacity_mbps).clamp(0.0, 1.0)
        }
    }

    /// Whether the node is actively forwarding any substream.
    pub fn is_active(&self) -> bool {
        !self.forwarding.is_empty()
    }
}

/// One heartbeat from a node to the global scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Reporting node.
    pub node: NodeId,
    /// Send time.
    pub at: SimTime,
    /// Current status snapshot.
    pub status: NodeStatus,
}

/// Heartbeat cadence: every 5 s while forwarding streams, every 10 s
/// when idle (§4.1.1).
pub fn heartbeat_interval_secs(active: bool) -> u64 {
    if active {
        5
    } else {
        10
    }
}

/// Approximate wire size of a heartbeat in bytes, for control-overhead
/// accounting. The paper cites ~150 B; our encoding matches: fixed
/// fields plus 10 B per forwarded substream.
pub fn heartbeat_wire_size(status: &NodeStatus) -> usize {
    // node id (8) + timestamp (8) + capacity/used/success (24) +
    // subscriber count (4) + list length (2).
    8 + 8 + 24 + 4 + 2 + status.forwarding.len() * 10
}

impl Heartbeat {
    /// Encodes the heartbeat into its compact wire form — the ~150-byte
    /// update of §4.1.1.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(heartbeat_wire_size(&self.status));
        out.extend_from_slice(&self.node.0.to_be_bytes());
        out.extend_from_slice(&self.at.as_micros().to_be_bytes());
        out.extend_from_slice(&self.status.capacity_mbps.to_be_bytes());
        out.extend_from_slice(&self.status.used_mbps.to_be_bytes());
        out.extend_from_slice(&self.status.conn_success_rate.to_be_bytes());
        out.extend_from_slice(&self.status.subscribers.to_be_bytes());
        out.extend_from_slice(&(self.status.forwarding.len() as u16).to_be_bytes());
        for key in &self.status.forwarding {
            out.extend_from_slice(&key.stream_id.to_be_bytes());
            out.extend_from_slice(&key.substream.to_be_bytes());
        }
        out
    }

    /// Decodes a heartbeat; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<Heartbeat> {
        fn u64_at(b: &[u8], i: usize) -> Option<u64> {
            b.get(i..i + 8)?.try_into().ok().map(u64::from_be_bytes)
        }
        fn f64_at(b: &[u8], i: usize) -> Option<f64> {
            b.get(i..i + 8)?.try_into().ok().map(f64::from_be_bytes)
        }
        let node = NodeId(u64_at(buf, 0)?);
        let at = SimTime::from_micros(u64_at(buf, 8)?);
        let capacity_mbps = f64_at(buf, 16)?;
        let used_mbps = f64_at(buf, 24)?;
        let conn_success_rate = f64_at(buf, 32)?;
        let subscribers = u32::from_be_bytes(buf.get(40..44)?.try_into().ok()?);
        let n = u16::from_be_bytes(buf.get(44..46)?.try_into().ok()?) as usize;
        let mut forwarding = BTreeSet::new();
        for i in 0..n {
            let base = 46 + i * 10;
            forwarding.insert(StreamKey {
                stream_id: u64_at(buf, base)?,
                substream: u16::from_be_bytes(buf.get(base + 8..base + 10)?.try_into().ok()?),
            });
        }
        Some(Heartbeat {
            node,
            at,
            status: NodeStatus {
                capacity_mbps,
                used_mbps,
                conn_success_rate,
                forwarding,
                subscribers,
            },
        })
    }
}

/// What the scheduler knows about a client when personalising scores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientInfo {
    /// The requesting client.
    pub id: ClientId,
    /// Client's ISP.
    pub isp: u16,
    /// Client's region.
    pub region: u16,
    /// Client's BGP prefix group.
    pub bgp_prefix: u32,
    /// Client coordinates.
    pub geo: (f64, f64),
    /// Client platform, selecting the score weight profile.
    pub platform: crate::scoring::Platform,
}

/// Great-circle-ish distance proxy between two coordinate pairs, in
/// degrees of arc (sufficient for monotone proximity scoring).
pub fn geo_distance(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    (dx * dx + dy * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_derived_metrics() {
        let mut s = NodeStatus::idle(100.0);
        assert_eq!(s.residual_mbps(), 100.0);
        assert_eq!(s.utilization(), 0.0);
        assert!(!s.is_active());
        s.used_mbps = 25.0;
        s.forwarding.insert(StreamKey {
            stream_id: 1,
            substream: 0,
        });
        assert_eq!(s.residual_mbps(), 75.0);
        assert!((s.utilization() - 0.25).abs() < 1e-12);
        assert!(s.is_active());
    }

    #[test]
    fn utilization_clamps() {
        let mut s = NodeStatus::idle(10.0);
        s.used_mbps = 25.0;
        assert_eq!(s.utilization(), 1.0);
        assert_eq!(s.residual_mbps(), 0.0);
        let z = NodeStatus::idle(0.0);
        assert_eq!(z.utilization(), 0.0);
    }

    #[test]
    fn heartbeat_cadence() {
        assert_eq!(heartbeat_interval_secs(true), 5);
        assert_eq!(heartbeat_interval_secs(false), 10);
    }

    #[test]
    fn heartbeat_size_near_150_bytes() {
        // A node forwarding a typical handful of substreams stays near
        // the paper's ~150 B figure.
        let mut s = NodeStatus::idle(50.0);
        for i in 0..10 {
            s.forwarding.insert(StreamKey {
                stream_id: i,
                substream: 0,
            });
        }
        let sz = heartbeat_wire_size(&s);
        assert!((100..=200).contains(&sz), "size {sz}");
    }

    #[test]
    fn heartbeat_wire_round_trip() {
        let mut status = NodeStatus::idle(48.5);
        status.used_mbps = 12.25;
        status.conn_success_rate = 0.93;
        status.subscribers = 17;
        for i in 0..7 {
            status.forwarding.insert(StreamKey {
                stream_id: i * 3,
                substream: (i % 4) as u16,
            });
        }
        let hb = Heartbeat {
            node: NodeId(42),
            at: SimTime::from_millis(123_456),
            status,
        };
        let bytes = hb.encode();
        assert_eq!(bytes.len(), heartbeat_wire_size(&hb.status));
        assert_eq!(Heartbeat::decode(&bytes), Some(hb));
    }

    #[test]
    fn heartbeat_decode_rejects_truncation() {
        let hb = Heartbeat {
            node: NodeId(1),
            at: SimTime::from_secs(1),
            status: NodeStatus::idle(10.0),
        };
        let bytes = hb.encode();
        for cut in 0..bytes.len() {
            assert_eq!(Heartbeat::decode(&bytes[..cut]), None, "cut {cut}");
        }
    }

    #[test]
    fn geo_distance_monotone() {
        let origin = (0.0, 0.0);
        assert!(geo_distance(origin, (1.0, 0.0)) < geo_distance(origin, (2.0, 0.0)));
        assert_eq!(geo_distance(origin, origin), 0.0);
    }
}
