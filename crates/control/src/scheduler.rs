//! The global scheduler (§4.1.1).
//!
//! The scheduler ingests node heartbeats, keeps per-node static and
//! temporal state, and answers candidate-recommendation requests: it
//! retrieves a pool from the [`crate::registry::HashTreeRegistry`],
//! ranks the pool with the personalised availability/cost objective
//! `argmax Σ aᵢ/pᵢ` (a node already forwarding the requested substream
//! has no back-to-CDN cost), mixes in exploration candidates (§8.2), and
//! returns the top-K. It also models the service's processing latency so
//! Fig 12(a) can be regenerated.

use crate::features::{
    ClientInfo, Heartbeat, NodeClass, NodeId, NodeStatus, StaticFeatures, StreamKey,
};
use crate::policy::{build_policy, AdaptiveConfig, SchedulerPolicy, SchedulerPolicyKind};
use crate::registry::{AttrQuery, HashTreeRegistry, MatchLevel};
use crate::scoring::{score, NatSuccessHistory, ScoreWeights};
use rlive_sim::metrics::{Percentiles, Summary};
use rlive_sim::trace::{TraceEvent, TraceSink};
use rlive_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Scheduler configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Number of candidates returned to the client (top-K).
    pub top_k: usize,
    /// Heartbeats older than this mark a node stale and unrecommendable.
    pub staleness: SimDuration,
    /// Relative cost multiplier for a node that must newly subscribe to
    /// the CDN (back-to-CDN traffic), versus one already forwarding.
    pub back_to_cdn_cost: f64,
    /// Fraction of the candidate list reserved for exploration (idle or
    /// under-observed nodes), the §8.2 explore–exploit balance.
    pub explore_fraction: f64,
    /// Base processing time of one recommendation request.
    pub service_base: SimDuration,
    /// Additional processing time per scored candidate.
    pub service_per_candidate: SimDuration,
    /// Which scoring policy serves recommendations (see
    /// [`crate::policy`]).
    pub policy: SchedulerPolicyKind,
    /// Tuning for [`SchedulerPolicyKind::Adaptive`]; ignored under
    /// [`SchedulerPolicyKind::Static`].
    pub adaptive: AdaptiveConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            top_k: 8,
            staleness: SimDuration::from_secs(30),
            back_to_cdn_cost: 2.0,
            explore_fraction: 0.2,
            service_base: SimDuration::from_millis(20),
            service_per_candidate: SimDuration::from_micros(100),
            policy: SchedulerPolicyKind::Static,
            adaptive: AdaptiveConfig::default(),
        }
    }
}

/// One recommended candidate, as returned to the client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The node.
    pub node: NodeId,
    /// Its availability/cost rank score at recommendation time.
    pub score: f64,
    /// Whether the node was already forwarding the requested substream.
    pub already_forwarding: bool,
}

/// A full recommendation response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recommendation {
    /// The requested substream.
    pub key: StreamKey,
    /// Candidates, best first.
    pub candidates: Vec<Candidate>,
    /// Time the scheduler spent producing the answer (modelled).
    pub service_time: SimDuration,
    /// How far the registry had to relax the attribute match.
    pub match_level: MatchLevel,
}

struct NodeRecord {
    statics: StaticFeatures,
    status: NodeStatus,
    last_heartbeat: SimTime,
}

/// The global scheduler.
///
/// # Examples
///
/// ```
/// use rlive_control::features::*;
/// use rlive_control::scheduler::{GlobalScheduler, SchedulerConfig};
/// use rlive_control::scoring::Platform;
/// use rlive_sim::nat::NatType;
/// use rlive_sim::{SimRng, SimTime};
///
/// let mut sched = GlobalScheduler::new(SchedulerConfig::default(), SimRng::new(1));
/// let statics = StaticFeatures {
///     isp: 1, region: 1, bgp_prefix: 9, geo: (0.0, 0.0),
///     class: NodeClass::Normal, conn_type: ConnectionType::Cable,
///     nat: NatType::FullCone,
/// };
/// sched.register_node(NodeId(1), statics, NodeStatus::idle(50.0));
/// let client = ClientInfo {
///     id: ClientId(7), isp: 1, region: 1, bgp_prefix: 9,
///     geo: (0.0, 0.0), platform: Platform::Android,
/// };
/// let key = StreamKey { stream_id: 3, substream: 0 };
/// let rec = sched.recommend(SimTime::from_secs(1), &client, key);
/// assert_eq!(rec.candidates[0].node, NodeId(1));
/// ```
pub struct GlobalScheduler {
    cfg: SchedulerConfig,
    registry: HashTreeRegistry,
    nodes: BTreeMap<NodeId, NodeRecord>,
    nat_history: NatSuccessHistory,
    /// The scoring policy behind the [`crate::policy::SchedulerPolicy`]
    /// seam. Adjusts availability scores and absorbs windowed feedback.
    policy: Box<dyn SchedulerPolicy>,
    rng: SimRng,
    // Telemetry for Fig 12.
    service_times: Percentiles,
    requests: u64,
    heartbeats: u64,
    heartbeat_bytes: u64,
    /// Structured trace sink (disabled by default): every served
    /// recommendation is emitted as a `SchedulerRecommendation` event.
    trace: TraceSink,
}

impl GlobalScheduler {
    /// Creates a scheduler.
    pub fn new(cfg: SchedulerConfig, rng: SimRng) -> Self {
        let policy = build_policy(cfg.policy, &cfg.adaptive);
        GlobalScheduler {
            cfg,
            registry: HashTreeRegistry::new(),
            nodes: BTreeMap::new(),
            nat_history: NatSuccessHistory::default(),
            policy,
            rng,
            service_times: Percentiles::new(),
            requests: 0,
            heartbeats: 0,
            heartbeat_bytes: 0,
            trace: TraceSink::disabled(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Attaches a structured trace sink for recommendation events.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Registers a node's static features (on first sight / re-register).
    pub fn register_node(&mut self, node: NodeId, statics: StaticFeatures, status: NodeStatus) {
        self.registry.index_node(
            node,
            statics.isp,
            statics.class,
            statics.region,
            status.forwarding.iter().copied(),
        );
        self.nodes.insert(
            node,
            NodeRecord {
                statics,
                status,
                last_heartbeat: SimTime::ZERO,
            },
        );
    }

    /// Removes a node entirely (e.g. observed offline).
    pub fn deregister_node(&mut self, node: NodeId) {
        self.registry.remove_node(node);
        self.nodes.remove(&node);
    }

    /// Number of known nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Ingests one heartbeat, refreshing temporal state and the index.
    pub fn ingest_heartbeat(&mut self, hb: Heartbeat) {
        self.heartbeats += 1;
        self.heartbeat_bytes += crate::features::heartbeat_wire_size(&hb.status) as u64;
        if let Some(rec) = self.nodes.get_mut(&hb.node) {
            let forwarding_changed = rec.status.forwarding != hb.status.forwarding;
            rec.status = hb.status;
            rec.last_heartbeat = hb.at;
            if forwarding_changed {
                let statics = rec.statics;
                let forwarding: Vec<StreamKey> = rec.status.forwarding.iter().copied().collect();
                self.registry.index_node(
                    hb.node,
                    statics.isp,
                    statics.class,
                    statics.region,
                    forwarding,
                );
            }
        }
    }

    /// Records the outcome of a client's connection attempt so the
    /// NAT-specific success-rate term stays current. The same outcome
    /// feeds the active policy's per-node candidate-yield window.
    pub fn observe_connection(&mut self, now: SimTime, node: NodeId, success: bool) {
        if let Some(rec) = self.nodes.get(&node) {
            self.nat_history.observe(rec.statics.nat, success);
            self.policy.note_probe(now, node, success);
        }
    }

    /// Feeds the outcome of a loss-recovery attempt attributed to
    /// `node` (the best-effort relay that was serving the recovered
    /// frame's substream) into the active policy's per-node
    /// recovery-failure window. A no-op under the static policy and for
    /// departed nodes.
    pub fn note_recovery_outcome(&mut self, now: SimTime, node: NodeId, success: bool) {
        if self.nodes.contains_key(&node) {
            self.policy.note_recovery(now, node, success);
        }
    }

    /// The active policy's label (`static` / `adaptive`).
    pub fn policy_label(&self) -> &'static str {
        self.policy.label()
    }

    /// Demotions the active policy has applied so far, keyed by
    /// feedback window. Empty under the static policy.
    pub fn policy_demotions(&self) -> BTreeMap<u64, u64> {
        self.policy.demotions_by_window()
    }

    /// Mean stream-level utilisation across nodes forwarding `key` —
    /// the `ū_stream` double-check used by the adviser's cost trigger
    /// (§4.2.2). Departed nodes are excluded the same way the
    /// recommendation path excludes them: a node whose heartbeat is
    /// older than the staleness bound no longer vouches for the
    /// stream's capacity (its frozen last-known status would otherwise
    /// pollute the mean forever).
    pub fn stream_utilization(&self, now: SimTime, key: StreamKey) -> Option<f64> {
        let mut s = Summary::new();
        for rec in self.nodes.values() {
            if !rec.status.forwarding.contains(&key) {
                continue;
            }
            if now.saturating_since(rec.last_heartbeat) > self.cfg.staleness
                && rec.last_heartbeat != SimTime::ZERO
            {
                continue;
            }
            s.add(rec.status.utilization());
        }
        if s.count() == 0 {
            None
        } else {
            Some(s.mean())
        }
    }

    /// Produces the top-K candidate recommendation for `client`
    /// requesting `key` at time `now`.
    pub fn recommend(
        &mut self,
        now: SimTime,
        client: &ClientInfo,
        key: StreamKey,
    ) -> Recommendation {
        // Stage-profiled (wall clock, stderr-only reporting).
        let _span = rlive_sim::obs::time_stage(rlive_sim::obs::Stage::SchedulerCall);
        self.requests += 1;
        // Roll the policy's feedback windows forward (no-op for Static).
        self.policy.advance(now);
        let weights = ScoreWeights::for_platform(client.platform);
        let query = AttrQuery {
            stream: key,
            isp: client.isp,
            class: NodeClass::HighQuality,
            region: client.region,
        };
        // Retrieve a pool several times K so ranking has slack.
        let want = self.cfg.top_k * 8;
        let (pool, match_level) = self.registry.retrieve(&query, want);

        let mut scored: Vec<Candidate> = Vec::with_capacity(pool.len());
        for node in pool {
            let Some(rec) = self.nodes.get(&node) else {
                continue;
            };
            if now.saturating_since(rec.last_heartbeat) > self.cfg.staleness
                && rec.last_heartbeat != SimTime::ZERO
            {
                continue;
            }
            let already = rec.status.forwarding.contains(&key);
            // The policy seam: the static score passes through
            // unmodified under `StaticScorePolicy` (byte-identical to
            // the pre-seam scheduler); `AdaptivePolicy` multiplies in
            // the node's learned demotion/boost factor.
            let availability = self.policy.adjust(
                node,
                score(
                    &weights,
                    &rec.statics,
                    &rec.status,
                    client,
                    &self.nat_history,
                ),
            );
            // The §4.1.1 objective: availability over cost, where cost is
            // the client's bandwidth alone when the node already forwards
            // the substream, and includes back-to-CDN traffic otherwise.
            let cost = if already {
                1.0
            } else {
                self.cfg.back_to_cdn_cost
            };
            scored.push(Candidate {
                node,
                score: availability / cost,
                already_forwarding: already,
            });
        }
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| a.node.cmp(&b.node))
        });

        // Explore–exploit (§8.2): reserve a slice of the list for idle or
        // underused nodes so the scheduler keeps observing them.
        let k = self.cfg.top_k;
        let exploit_n = ((1.0 - self.cfg.explore_fraction) * k as f64).round() as usize;
        let mut result: Vec<Candidate> = scored.iter().take(exploit_n).copied().collect();
        let explorable: Vec<Candidate> = scored
            .iter()
            .skip(exploit_n)
            .filter(|c| !c.already_forwarding)
            .copied()
            .collect();
        while result.len() < k && !explorable.is_empty() {
            let pick = self.rng.below(explorable.len() as u64) as usize;
            if !result.iter().any(|c| c.node == explorable[pick].node) {
                result.push(explorable[pick]);
            } else {
                break;
            }
        }
        // Fill any remaining slots from the ranked tail.
        for c in scored.iter().skip(exploit_n) {
            if result.len() >= k {
                break;
            }
            if !result.iter().any(|r| r.node == c.node) {
                result.push(*c);
            }
        }

        let service_time = self.sample_service_time(scored.len());
        self.service_times.add(service_time.as_millis_f64());
        self.trace.emit(
            now,
            Some(client.id.0),
            TraceEvent::SchedulerRecommendation {
                stream: key.stream_id,
                substream: key.substream,
                candidates: result.len() as u32,
                service_time_ms: service_time.as_millis_f64(),
            },
        );
        Recommendation {
            key,
            candidates: result,
            service_time,
            match_level,
        }
    }

    fn sample_service_time(&mut self, candidates_scored: usize) -> SimDuration {
        // Base cost plus per-candidate scoring plus a lognormal tail for
        // queueing/GC/IO — calibrated to Fig 12(a): P50 ≈ 58 ms,
        // P90 ≈ 111.5 ms.
        let base = self.cfg.service_base
            + self
                .cfg
                .service_per_candidate
                .saturating_mul(candidates_scored as u64);
        let tail = self.rng.lognormal(3.55, 0.7);
        base + SimDuration::from_secs_f64(tail / 1000.0)
    }

    /// Service-time distribution accumulated so far (milliseconds).
    pub fn service_time_stats(&mut self) -> &mut Percentiles {
        &mut self.service_times
    }

    /// Total recommendation requests served.
    pub fn request_count(&self) -> u64 {
        self.requests
    }

    /// Total heartbeats ingested and their cumulative wire bytes.
    pub fn heartbeat_stats(&self) -> (u64, u64) {
        (self.heartbeats, self.heartbeat_bytes)
    }

    /// Iterates over known node ids (for tests and world wiring).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Looks up a node's current status.
    pub fn node_status(&self, node: NodeId) -> Option<&NodeStatus> {
        self.nodes.get(&node).map(|r| &r.status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{ClientId, ConnectionType};
    use crate::scoring::Platform;
    use rlive_sim::nat::NatType;

    fn statics(isp: u16, region: u16, bgp: u32) -> StaticFeatures {
        StaticFeatures {
            isp,
            region,
            bgp_prefix: bgp,
            geo: (0.0, 0.0),
            class: NodeClass::HighQuality,
            conn_type: ConnectionType::Cable,
            nat: NatType::FullCone,
        }
    }

    fn client() -> ClientInfo {
        ClientInfo {
            id: ClientId(1),
            isp: 1,
            region: 1,
            bgp_prefix: 100,
            geo: (0.0, 0.0),
            platform: Platform::Android,
        }
    }

    fn key() -> StreamKey {
        StreamKey {
            stream_id: 7,
            substream: 0,
        }
    }

    fn scheduler_with_nodes(n: u64) -> GlobalScheduler {
        let mut s = GlobalScheduler::new(SchedulerConfig::default(), SimRng::new(1));
        for i in 0..n {
            let mut status = NodeStatus::idle(50.0);
            if i % 2 == 0 {
                status.forwarding.insert(key());
                status.used_mbps = 10.0;
            }
            s.register_node(NodeId(i), statics(1, 1, 100 + i as u32), status);
        }
        s
    }

    #[test]
    fn recommends_top_k() {
        let mut s = scheduler_with_nodes(200);
        let rec = s.recommend(SimTime::from_secs(1), &client(), key());
        assert_eq!(rec.candidates.len(), s.config().top_k);
        assert_eq!(rec.match_level, MatchLevel::Exact);
    }

    #[test]
    fn forwarding_nodes_preferred_for_cost() {
        let mut s = scheduler_with_nodes(40);
        let rec = s.recommend(SimTime::from_secs(1), &client(), key());
        // The exploit slice should be dominated by already-forwarding
        // nodes (cost 1 vs back_to_cdn_cost 2).
        let exploit = &rec.candidates[..5];
        let forwarding = exploit.iter().filter(|c| c.already_forwarding).count();
        assert!(forwarding >= 4, "forwarding in top-5: {forwarding}");
    }

    #[test]
    fn exploration_mixes_in_idle_nodes() {
        let mut s = scheduler_with_nodes(100);
        let rec = s.recommend(SimTime::from_secs(1), &client(), key());
        let idle = rec
            .candidates
            .iter()
            .filter(|c| !c.already_forwarding)
            .count();
        assert!(idle >= 1, "no exploration candidates in {rec:?}");
    }

    #[test]
    fn stale_nodes_excluded() {
        let mut s = scheduler_with_nodes(10);
        // All nodes heartbeat at t=10s.
        for i in 0..10 {
            let mut status = NodeStatus::idle(50.0);
            status.forwarding.insert(key());
            s.ingest_heartbeat(Heartbeat {
                node: NodeId(i),
                at: SimTime::from_secs(10),
                status,
            });
        }
        // At t=100s everything is stale (staleness 30s).
        let rec = s.recommend(SimTime::from_secs(100), &client(), key());
        assert!(rec.candidates.is_empty(), "{:?}", rec.candidates);
        // At t=20s nodes are fresh.
        let rec = s.recommend(SimTime::from_secs(20), &client(), key());
        assert!(!rec.candidates.is_empty());
    }

    #[test]
    fn heartbeat_updates_forwarding_index() {
        let mut s = GlobalScheduler::new(SchedulerConfig::default(), SimRng::new(2));
        s.register_node(NodeId(1), statics(1, 1, 100), NodeStatus::idle(50.0));
        let rec = s.recommend(SimTime::from_secs(1), &client(), key());
        assert!(rec.candidates.iter().all(|c| !c.already_forwarding));
        let mut status = NodeStatus::idle(50.0);
        status.forwarding.insert(key());
        s.ingest_heartbeat(Heartbeat {
            node: NodeId(1),
            at: SimTime::from_secs(2),
            status,
        });
        let rec = s.recommend(SimTime::from_secs(3), &client(), key());
        assert!(rec.candidates[0].already_forwarding);
    }

    #[test]
    fn service_time_distribution_matches_fig12a() {
        let mut s = scheduler_with_nodes(200);
        for i in 0..2_000 {
            s.recommend(SimTime::from_secs(1 + i), &client(), key());
        }
        let p50 = s.service_time_stats().median();
        let p90 = s.service_time_stats().quantile(0.9);
        // Fig 12(a): median 58.2 ms, P90 111.5 ms. Shape check with slack.
        assert!((40.0..80.0).contains(&p50), "p50 {p50}");
        assert!((85.0..160.0).contains(&p90), "p90 {p90}");
        assert!(p90 > p50 * 1.5);
    }

    #[test]
    fn stream_utilization_aggregates() {
        let mut s = GlobalScheduler::new(SchedulerConfig::default(), SimRng::new(3));
        for i in 0..4 {
            let mut status = NodeStatus::idle(100.0);
            status.forwarding.insert(key());
            status.used_mbps = 25.0 * i as f64; // 0, 25, 50, 75
            s.register_node(NodeId(i), statics(1, 1, 1), status);
        }
        let u = s
            .stream_utilization(SimTime::from_secs(1), key())
            .expect("has forwarders");
        assert!((u - 0.375).abs() < 1e-9, "u {u}");
        assert!(s
            .stream_utilization(
                SimTime::from_secs(1),
                StreamKey {
                    stream_id: 99,
                    substream: 0
                }
            )
            .is_none());
    }

    #[test]
    fn stream_utilization_excludes_stale_nodes() {
        let mut s = GlobalScheduler::new(SchedulerConfig::default(), SimRng::new(3));
        for i in 0..2 {
            let mut status = NodeStatus::idle(100.0);
            status.forwarding.insert(key());
            status.used_mbps = 50.0 * i as f64; // 0, 50
            s.register_node(NodeId(i), statics(1, 1, 1), status);
        }
        // Both heartbeat at t=10s; node 1 then goes silent (offline).
        for i in 0..2 {
            let mut status = NodeStatus::idle(100.0);
            status.forwarding.insert(key());
            status.used_mbps = 50.0 * i as f64;
            s.ingest_heartbeat(Heartbeat {
                node: NodeId(i),
                at: SimTime::from_secs(10),
                status,
            });
        }
        let mut fresh = NodeStatus::idle(100.0);
        fresh.forwarding.insert(key());
        fresh.used_mbps = 0.0;
        s.ingest_heartbeat(Heartbeat {
            node: NodeId(0),
            at: SimTime::from_secs(100),
            status: fresh,
        });
        // At t=100s node 1's heartbeat is 90s old (staleness 30s): its
        // frozen 50% utilisation must not pollute the stream mean.
        let u = s
            .stream_utilization(SimTime::from_secs(100), key())
            .expect("fresh forwarder remains");
        assert!(u.abs() < 1e-9, "stale node leaked into u_stream: {u}");
        // While fresh, both contribute.
        let u = s
            .stream_utilization(SimTime::from_secs(12), key())
            .expect("both fresh");
        assert!((u - 0.25).abs() < 1e-9, "u {u}");
    }

    #[test]
    fn stream_utilization_excludes_deregistered_nodes() {
        let mut s = GlobalScheduler::new(SchedulerConfig::default(), SimRng::new(4));
        for i in 0..2 {
            let mut status = NodeStatus::idle(100.0);
            status.forwarding.insert(key());
            status.used_mbps = 40.0;
            s.register_node(NodeId(i), statics(1, 1, 1), status);
        }
        s.deregister_node(NodeId(1));
        let u = s
            .stream_utilization(SimTime::from_secs(1), key())
            .expect("one forwarder left");
        assert!((u - 0.4).abs() < 1e-9, "u {u}");
        s.deregister_node(NodeId(0));
        assert!(s.stream_utilization(SimTime::from_secs(1), key()).is_none());
    }

    #[test]
    fn deregister_removes_from_recommendations() {
        let mut s = scheduler_with_nodes(5);
        for i in 0..5 {
            s.deregister_node(NodeId(i));
        }
        let rec = s.recommend(SimTime::from_secs(1), &client(), key());
        assert!(rec.candidates.is_empty());
        assert_eq!(s.node_count(), 0);
    }

    /// Regression: a heartbeat that was already in flight when its node
    /// was deregistered must not resurrect per-stream state — the
    /// departed node can never be recommended and never counts toward
    /// stream utilisation again.
    #[test]
    fn late_heartbeat_cannot_resurrect_deregistered_node() {
        let mut s = scheduler_with_nodes(1);
        s.deregister_node(NodeId(0));
        let mut status = NodeStatus::idle(50.0);
        status.forwarding.insert(key());
        s.ingest_heartbeat(Heartbeat {
            node: NodeId(0),
            at: SimTime::from_secs(5),
            status,
        });
        assert_eq!(s.node_count(), 0);
        let rec = s.recommend(SimTime::from_secs(6), &client(), key());
        assert!(
            rec.candidates.is_empty(),
            "deregistered node recommended: {:?}",
            rec.candidates
        );
        assert!(s.stream_utilization(SimTime::from_secs(6), key()).is_none());
        // Connection observations for the departed node are dropped too.
        s.observe_connection(SimTime::from_secs(6), NodeId(0), false);
    }

    #[test]
    fn connection_observation_feeds_nat_history() {
        let mut s = scheduler_with_nodes(2);
        // Fail FullCone connections repeatedly; future scores drop but
        // recommendation still works.
        for _ in 0..100 {
            s.observe_connection(SimTime::from_secs(1), NodeId(0), false);
        }
        let rec = s.recommend(SimTime::from_secs(1), &client(), key());
        assert!(!rec.candidates.is_empty());
    }

    #[test]
    fn adaptive_policy_demotes_failing_node_end_to_end() {
        let cfg = SchedulerConfig {
            policy: SchedulerPolicyKind::Adaptive,
            ..SchedulerConfig::default()
        };
        let mut s = GlobalScheduler::new(cfg, SimRng::new(5));
        for i in 0..2u64 {
            let mut status = NodeStatus::idle(50.0);
            status.forwarding.insert(key());
            s.register_node(NodeId(i), statics(1, 1, 100 + i as u32), status);
        }
        assert_eq!(s.policy_label(), "adaptive");
        // Node 0's recoveries fail across two consecutive windows.
        for w in 0..2u64 {
            let t = SimTime::from_millis(w * 1_000 + 100);
            s.note_recovery_outcome(t, NodeId(0), false);
            s.note_recovery_outcome(t, NodeId(0), false);
            s.note_recovery_outcome(t, NodeId(1), true);
            s.note_recovery_outcome(t, NodeId(1), true);
        }
        let rec = s.recommend(SimTime::from_secs(3), &client(), key());
        assert_eq!(rec.candidates[0].node, NodeId(1), "{:?}", rec.candidates);
        assert!(rec.candidates[0].score > rec.candidates[1].score);
        let demoted: u64 = s.policy_demotions().values().sum();
        assert_eq!(demoted, 1);
    }
}
