//! Scheduler capacity planning: sustainable QPS and queueing delay.
//!
//! Fig 12(c) of the paper shows the global scheduler absorbing several
//! million recommendation queries per second at the evening peak. This
//! module provides the standard M/M/c approximation used to size such a
//! service: given a per-request service time and a shard/worker count,
//! it predicts utilisation, queueing delay and the sustainable QPS for a
//! latency target — the back-of-envelope that connects our measured
//! microsecond-scale recommendation cost to the paper's production QPS.

use rlive_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// An M/M/c service model of the scheduler fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityModel {
    /// Mean service time of one recommendation request.
    pub service_time: SimDuration,
    /// Number of parallel workers (cores × shards).
    pub workers: u32,
}

impl CapacityModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or the service time is zero.
    pub fn new(service_time: SimDuration, workers: u32) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            service_time > SimDuration::ZERO,
            "service time must be positive"
        );
        CapacityModel {
            service_time,
            workers,
        }
    }

    /// Per-worker service rate, requests per second.
    pub fn service_rate(&self) -> f64 {
        1.0 / self.service_time.as_secs_f64()
    }

    /// Fleet-wide saturation throughput, requests per second.
    pub fn saturation_qps(&self) -> f64 {
        self.service_rate() * self.workers as f64
    }

    /// Utilisation at an offered load (clamped to 1).
    pub fn utilization(&self, offered_qps: f64) -> f64 {
        (offered_qps / self.saturation_qps()).clamp(0.0, 1.0)
    }

    /// Erlang-C probability that an arriving request must queue.
    ///
    /// Computed with the standard iterative form, numerically stable for
    /// large `c`.
    pub fn erlang_c(&self, offered_qps: f64) -> f64 {
        let c = self.workers as f64;
        let a = offered_qps / self.service_rate(); // offered load, Erlangs
        if a >= c {
            return 1.0;
        }
        // Iteratively compute the Erlang-B blocking probability, then
        // convert to Erlang-C.
        let mut b = 1.0;
        for k in 1..=self.workers {
            b = a * b / (k as f64 + a * b);
        }
        let rho = a / c;
        b / (1.0 - rho * (1.0 - b))
    }

    /// Mean queueing delay (excluding service) at an offered load.
    /// Returns `None` when the load meets or exceeds saturation.
    pub fn mean_queue_delay(&self, offered_qps: f64) -> Option<SimDuration> {
        let c = self.workers as f64;
        let a = offered_qps / self.service_rate();
        if a >= c {
            return None;
        }
        let pw = self.erlang_c(offered_qps);
        let wq = pw * self.service_time.as_secs_f64() / (c - a);
        Some(SimDuration::from_secs_f64(wq))
    }

    /// Mean total latency (queueing + service) at an offered load.
    pub fn mean_latency(&self, offered_qps: f64) -> Option<SimDuration> {
        self.mean_queue_delay(offered_qps)
            .map(|q| q + self.service_time)
    }

    /// The highest QPS at which the mean total latency stays at or
    /// below `target`, found by bisection. Returns 0 if even an idle
    /// system misses the target.
    pub fn sustainable_qps(&self, target: SimDuration) -> f64 {
        if self.service_time > target {
            return 0.0;
        }
        let mut lo = 0.0;
        let mut hi = self.saturation_qps() * 0.999_999;
        for _ in 0..64 {
            let mid = (lo + hi) / 2.0;
            match self.mean_latency(mid) {
                Some(l) if l <= target => lo = mid,
                _ => hi = mid,
            }
        }
        lo
    }

    /// Workers needed to carry `offered_qps` with mean latency at or
    /// below `target` (smallest fleet found by doubling + bisection).
    pub fn workers_for(service_time: SimDuration, offered_qps: f64, target: SimDuration) -> u32 {
        if service_time > target {
            return u32::MAX;
        }
        let mut c = 1u32;
        loop {
            let model = CapacityModel::new(service_time, c);
            if model
                .mean_latency(offered_qps)
                .map(|l| l <= target)
                .unwrap_or(false)
            {
                return c;
            }
            c = c.saturating_mul(2);
            if c > 1 << 26 {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn saturation_scales_with_workers() {
        let one = CapacityModel::new(ms(10), 1);
        let ten = CapacityModel::new(ms(10), 10);
        assert!((one.saturation_qps() - 100.0).abs() < 1e-9);
        assert!((ten.saturation_qps() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn erlang_c_limits() {
        let m = CapacityModel::new(ms(10), 4);
        // Idle system: nobody queues. Saturated: everybody queues.
        assert!(m.erlang_c(1.0) < 0.01);
        assert!((m.erlang_c(1e9) - 1.0).abs() < 1e-12);
        // Monotone in load.
        let mut last = 0.0;
        for qps in [50.0, 150.0, 250.0, 350.0] {
            let p = m.erlang_c(qps);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn single_server_matches_mm1() {
        // For c = 1, Erlang-C reduces to rho and Wq = rho/(mu - lambda).
        let m = CapacityModel::new(ms(10), 1);
        let lambda = 50.0;
        let rho: f64 = 0.5;
        assert!((m.erlang_c(lambda) - rho).abs() < 1e-9);
        let wq = m.mean_queue_delay(lambda).expect("stable").as_secs_f64();
        let expected = rho / (100.0 - 50.0);
        assert!((wq - expected).abs() < 1e-9, "wq {wq} vs {expected}");
    }

    #[test]
    fn latency_blows_up_near_saturation() {
        let m = CapacityModel::new(ms(10), 8);
        let low = m.mean_latency(100.0).expect("stable");
        let high = m.mean_latency(m.saturation_qps() * 0.99).expect("stable");
        assert!(high > low.saturating_mul(3));
        assert_eq!(m.mean_latency(m.saturation_qps() * 1.1), None);
    }

    #[test]
    fn sustainable_qps_respects_target() {
        let m = CapacityModel::new(ms(10), 16);
        let target = ms(15);
        let qps = m.sustainable_qps(target);
        assert!(qps > 0.0 && qps < m.saturation_qps());
        let at = m.mean_latency(qps * 0.999).expect("stable");
        assert!(at <= target);
        // Beyond the sustainable point, latency exceeds the target.
        if let Some(beyond) = m.mean_latency((qps * 1.05).min(m.saturation_qps() * 0.999)) {
            assert!(beyond > target);
        }
    }

    #[test]
    fn impossible_target_yields_zero() {
        let m = CapacityModel::new(ms(100), 4);
        assert_eq!(m.sustainable_qps(ms(50)), 0.0);
    }

    #[test]
    fn production_scale_projection() {
        // Our measured recommendation cost is ~18 µs over 10k nodes.
        // Fig 12(c) peaks at several million QPS — the model says a few
        // hundred cores sustain that with millisecond queueing, which is
        // exactly the kind of fleet a hyperscaler deploys.
        let per_request = us(18);
        let needed = CapacityModel::workers_for(per_request, 3_000_000.0, ms(5));
        assert!(
            (32..=512).contains(&needed),
            "needed {needed} workers for 3M QPS"
        );
    }

    #[test]
    fn workers_for_monotone_in_load() {
        let a = CapacityModel::workers_for(ms(1), 1_000.0, ms(5));
        let b = CapacityModel::workers_for(ms(1), 10_000.0, ms(5));
        assert!(b >= a);
    }
}
