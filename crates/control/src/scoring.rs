//! Personalised candidate scoring (§4.1.1).
//!
//! Each retrieved candidate gets a score
//! `S(n, c) = α₁·N(n,c) + α₂·G(n,c) + α₃·R(n,c) + α₄·B(n)` combining
//! same-network preference, geographic proximity, NAT-specific historical
//! connection success rate, and residual bandwidth. The α weights differ
//! by platform/application, so they are a first-class configuration.

use crate::features::{geo_distance, ClientInfo, NodeStatus, StaticFeatures};
use rlive_sim::nat::{NatType, TraversalModel};
use serde::{Deserialize, Serialize};

/// Client platform — selects the score weight profile (§4.1.1 notes the
/// α weights differ across platforms and applications).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Android devices, the population in the paper's A/B tests.
    Android,
    /// iOS devices.
    Ios,
    /// Smart-TV / set-top players.
    Tv,
}

/// The α weights of the scoring formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreWeights {
    /// α₁: same-network (BGP prefix) preference.
    pub same_network: f64,
    /// α₂: geographic proximity.
    pub proximity: f64,
    /// α₃: NAT-specific connection success rate.
    pub nat_success: f64,
    /// α₄: residual bandwidth availability.
    pub bandwidth: f64,
}

impl ScoreWeights {
    /// The deployed weight profile for a platform.
    pub fn for_platform(platform: Platform) -> Self {
        match platform {
            // Mobile links churn; success rate and proximity dominate.
            Platform::Android => ScoreWeights {
                same_network: 0.30,
                proximity: 0.25,
                nat_success: 0.30,
                bandwidth: 0.15,
            },
            Platform::Ios => ScoreWeights {
                same_network: 0.30,
                proximity: 0.30,
                nat_success: 0.25,
                bandwidth: 0.15,
            },
            // TVs watch long sessions at high bitrate; bandwidth matters.
            Platform::Tv => ScoreWeights {
                same_network: 0.20,
                proximity: 0.20,
                nat_success: 0.25,
                bandwidth: 0.35,
            },
        }
    }
}

/// Tracks per-NAT-type historical connection success rates, the `R`
/// term. Updated from probe outcomes; exponentially weighted so stale
/// history decays.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NatSuccessHistory {
    rates: Vec<(NatType, f64)>,
    alpha: f64,
}

impl Default for NatSuccessHistory {
    fn default() -> Self {
        let model = TraversalModel::default();
        NatSuccessHistory {
            rates: NatType::ALL
                .iter()
                .map(|&n| (n, model.success_probability(n)))
                .collect(),
            alpha: 0.05,
        }
    }
}

impl NatSuccessHistory {
    /// The documented prior for a NAT class with no observations yet:
    /// the traversal model's a-priori success probability — the same
    /// value `Default` seeds every class from.
    fn prior(nat: NatType) -> f64 {
        TraversalModel::default().success_probability(nat)
    }

    /// Current estimated success rate for a NAT type. A class that has
    /// never been observed (e.g. a deserialized partial history) falls
    /// back to the traversal-model prior, not an arbitrary constant.
    pub fn rate(&self, nat: NatType) -> f64 {
        self.rates
            .iter()
            .find(|(n, _)| *n == nat)
            .map(|(_, r)| *r)
            .unwrap_or_else(|| Self::prior(nat))
    }

    /// Folds one observed connection outcome into the history. Only the
    /// observed NAT class is updated; a cold class is seeded from the
    /// prior before the EWMA step so the first observation nudges the
    /// prior instead of being dropped.
    pub fn observe(&mut self, nat: NatType, success: bool) {
        let alpha = self.alpha;
        let sample = if success { 1.0 } else { 0.0 };
        if let Some((_, r)) = self.rates.iter_mut().find(|(n, _)| *n == nat) {
            *r = (1.0 - alpha) * *r + alpha * sample;
        } else {
            let seeded = (1.0 - alpha) * Self::prior(nat) + alpha * sample;
            self.rates.push((nat, seeded));
        }
    }
}

/// Normalising constant: proximity decays to ~0 at this distance.
const MAX_GEO_DISTANCE: f64 = 30.0;
/// Normalising constant: residual bandwidth saturates the B term here.
const MAX_RESIDUAL_MBPS: f64 = 100.0;

/// Computes `S(n, c)` for a candidate.
///
/// All four terms are normalised to `[0, 1]`, so with weights summing to
/// one the score itself lies in `[0, 1]`.
pub fn score(
    weights: &ScoreWeights,
    node_static: &StaticFeatures,
    node_status: &NodeStatus,
    client: &ClientInfo,
    nat_history: &NatSuccessHistory,
) -> f64 {
    let n_term = if node_static.bgp_prefix == client.bgp_prefix {
        1.0
    } else if node_static.isp == client.isp {
        0.5
    } else {
        0.0
    };
    let g_term = {
        let d = geo_distance(node_static.geo, client.geo);
        (1.0 - d / MAX_GEO_DISTANCE).max(0.0)
    };
    let r_term = nat_history.rate(node_static.nat);
    let b_term = (node_status.residual_mbps() / MAX_RESIDUAL_MBPS).min(1.0);

    weights.same_network * n_term
        + weights.proximity * g_term
        + weights.nat_success * r_term
        + weights.bandwidth * b_term
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{ClientId, ConnectionType, NodeClass};

    fn node(bgp: u32, geo: (f64, f64), nat: NatType) -> StaticFeatures {
        StaticFeatures {
            isp: 1,
            region: 1,
            bgp_prefix: bgp,
            geo,
            class: NodeClass::Normal,
            conn_type: ConnectionType::Cable,
            nat,
        }
    }

    fn client() -> ClientInfo {
        ClientInfo {
            id: ClientId(1),
            isp: 1,
            region: 1,
            bgp_prefix: 100,
            geo: (0.0, 0.0),
            platform: Platform::Android,
        }
    }

    fn weights() -> ScoreWeights {
        ScoreWeights::for_platform(Platform::Android)
    }

    #[test]
    fn same_prefix_beats_same_isp_beats_foreign() {
        let hist = NatSuccessHistory::default();
        let status = NodeStatus::idle(50.0);
        let c = client();
        let same_prefix = score(
            &weights(),
            &node(100, (0.0, 0.0), NatType::Public),
            &status,
            &c,
            &hist,
        );
        let same_isp = score(
            &weights(),
            &node(200, (0.0, 0.0), NatType::Public),
            &status,
            &c,
            &hist,
        );
        let mut foreign_static = node(200, (0.0, 0.0), NatType::Public);
        foreign_static.isp = 9;
        let foreign = score(&weights(), &foreign_static, &status, &c, &hist);
        assert!(same_prefix > same_isp);
        assert!(same_isp > foreign);
    }

    #[test]
    fn closer_nodes_score_higher() {
        let hist = NatSuccessHistory::default();
        let status = NodeStatus::idle(50.0);
        let c = client();
        let near = score(
            &weights(),
            &node(100, (1.0, 0.0), NatType::Public),
            &status,
            &c,
            &hist,
        );
        let far = score(
            &weights(),
            &node(100, (20.0, 0.0), NatType::Public),
            &status,
            &c,
            &hist,
        );
        assert!(near > far);
    }

    #[test]
    fn easier_nat_scores_higher() {
        let hist = NatSuccessHistory::default();
        let status = NodeStatus::idle(50.0);
        let c = client();
        let easy = score(
            &weights(),
            &node(100, (0.0, 0.0), NatType::FullCone),
            &status,
            &c,
            &hist,
        );
        let hard = score(
            &weights(),
            &node(100, (0.0, 0.0), NatType::Symmetric),
            &status,
            &c,
            &hist,
        );
        assert!(easy > hard);
    }

    #[test]
    fn more_residual_bandwidth_scores_higher() {
        let hist = NatSuccessHistory::default();
        let c = client();
        let n = node(100, (0.0, 0.0), NatType::Public);
        let mut busy = NodeStatus::idle(50.0);
        busy.used_mbps = 45.0;
        let idle = NodeStatus::idle(50.0);
        assert!(score(&weights(), &n, &idle, &c, &hist) > score(&weights(), &n, &busy, &c, &hist));
    }

    #[test]
    fn score_bounded_unit_interval() {
        let hist = NatSuccessHistory::default();
        let c = client();
        for nat in NatType::ALL {
            for geo in [(0.0, 0.0), (50.0, 50.0)] {
                for used in [0.0, 50.0] {
                    let mut status = NodeStatus::idle(50.0);
                    status.used_mbps = used;
                    let s = score(&weights(), &node(100, geo, nat), &status, &c, &hist);
                    assert!((0.0..=1.0).contains(&s), "score {s}");
                }
            }
        }
    }

    #[test]
    fn nat_history_learns_from_failures() {
        let mut hist = NatSuccessHistory::default();
        let before = hist.rate(NatType::FullCone);
        for _ in 0..50 {
            hist.observe(NatType::FullCone, false);
        }
        let after = hist.rate(NatType::FullCone);
        assert!(after < before * 0.5, "{before} -> {after}");
        // Other types unaffected.
        assert_eq!(
            hist.rate(NatType::Public),
            NatSuccessHistory::default().rate(NatType::Public)
        );
    }

    #[test]
    fn cold_class_rate_falls_back_to_prior() {
        // A history with no entries at all (e.g. deserialized from a
        // partial snapshot) must report the traversal-model prior, not
        // a hard-coded 0.5.
        let hist = NatSuccessHistory {
            rates: vec![],
            alpha: 0.05,
        };
        let model = TraversalModel::default();
        for nat in NatType::ALL {
            assert_eq!(hist.rate(nat), model.success_probability(nat), "{nat:?}");
        }
    }

    #[test]
    fn cold_class_observe_seeds_from_prior_then_updates() {
        let mut hist = NatSuccessHistory {
            rates: vec![],
            alpha: 0.05,
        };
        let prior = TraversalModel::default().success_probability(NatType::Symmetric);
        hist.observe(NatType::Symmetric, false);
        let after = hist.rate(NatType::Symmetric);
        let expected = 0.95 * prior;
        assert!(
            (after - expected).abs() < 1e-12,
            "first observation must EWMA against the prior: {after} vs {expected}"
        );
        // Only the observed class was materialized; the rest still read
        // the prior.
        assert_eq!(
            hist.rate(NatType::Public),
            TraversalModel::default().success_probability(NatType::Public)
        );
        // Repeated failures keep converging toward 0.
        for _ in 0..200 {
            hist.observe(NatType::Symmetric, false);
        }
        assert!(hist.rate(NatType::Symmetric) < 0.01);
    }

    #[test]
    fn observe_touches_only_observed_class() {
        let mut hist = NatSuccessHistory::default();
        let before: Vec<f64> = NatType::ALL.iter().map(|&n| hist.rate(n)).collect();
        hist.observe(NatType::PortRestricted, true);
        for (i, &nat) in NatType::ALL.iter().enumerate() {
            if nat == NatType::PortRestricted {
                assert!(hist.rate(nat) > before[i]);
            } else {
                assert_eq!(hist.rate(nat), before[i], "{nat:?} drifted");
            }
        }
    }

    #[test]
    fn platform_profiles_differ() {
        let android = ScoreWeights::for_platform(Platform::Android);
        let tv = ScoreWeights::for_platform(Platform::Tv);
        assert!(tv.bandwidth > android.bandwidth);
        for w in [android, tv, ScoreWeights::for_platform(Platform::Ios)] {
            let sum = w.same_network + w.proximity + w.nat_success + w.bandwidth;
            assert!((sum - 1.0).abs() < 1e-9, "weights sum {sum}");
        }
    }
}
