//! Quota-based node availability (§8.1).
//!
//! Advertised bandwidth of heterogeneous best-effort nodes is unreliable,
//! and bandwidth is not always the bottleneck: nodes hit CPU, memory or
//! session-count limits at low (~10 %) bandwidth utilisation. Each node
//! therefore logs its bottleneck during stress testing and runtime
//! monitoring, and availability is evaluated as the *minimum headroom
//! across dimensions* rather than bandwidth alone.

use serde::{Deserialize, Serialize};

/// A resource dimension a node can bottleneck on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Uplink bandwidth.
    Bandwidth,
    /// CPU cycles (packetisation, chain generation, crypto).
    Cpu,
    /// Memory (subscriber state, frame buffers).
    Memory,
    /// Concurrent session/socket count (NAT table, fd limits).
    Sessions,
}

impl Resource {
    /// All dimensions.
    pub const ALL: [Resource; 4] = [
        Resource::Bandwidth,
        Resource::Cpu,
        Resource::Memory,
        Resource::Sessions,
    ];
}

/// Per-dimension capacity and usage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quota {
    /// Capacity in dimension-specific units.
    pub capacity: f64,
    /// Current usage in the same units.
    pub used: f64,
}

impl Quota {
    /// Creates a quota with zero usage.
    pub fn new(capacity: f64) -> Self {
        Quota {
            capacity,
            used: 0.0,
        }
    }

    /// Fractional headroom in `[0, 1]`.
    pub fn headroom(&self) -> f64 {
        if self.capacity <= 0.0 {
            0.0
        } else {
            ((self.capacity - self.used) / self.capacity).clamp(0.0, 1.0)
        }
    }

    /// Fractional utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        1.0 - self.headroom()
    }
}

/// The multi-dimensional quota set of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeQuotas {
    /// Bandwidth quota in Mbps.
    pub bandwidth: Quota,
    /// CPU quota in normalised "cores".
    pub cpu: Quota,
    /// Memory quota in MB.
    pub memory: Quota,
    /// Session-count quota.
    pub sessions: Quota,
}

impl NodeQuotas {
    /// Builds quotas from per-dimension capacities.
    pub fn new(bandwidth_mbps: f64, cpu_cores: f64, memory_mb: f64, max_sessions: f64) -> Self {
        NodeQuotas {
            bandwidth: Quota::new(bandwidth_mbps),
            cpu: Quota::new(cpu_cores),
            memory: Quota::new(memory_mb),
            sessions: Quota::new(max_sessions),
        }
    }

    /// Access one dimension.
    pub fn get(&self, r: Resource) -> &Quota {
        match r {
            Resource::Bandwidth => &self.bandwidth,
            Resource::Cpu => &self.cpu,
            Resource::Memory => &self.memory,
            Resource::Sessions => &self.sessions,
        }
    }

    /// Mutable access to one dimension.
    pub fn get_mut(&mut self, r: Resource) -> &mut Quota {
        match r {
            Resource::Bandwidth => &mut self.bandwidth,
            Resource::Cpu => &mut self.cpu,
            Resource::Memory => &mut self.memory,
            Resource::Sessions => &mut self.sessions,
        }
    }

    /// The node's availability: minimum headroom across dimensions.
    pub fn availability(&self) -> f64 {
        Resource::ALL
            .iter()
            .map(|&r| self.get(r).headroom())
            .fold(1.0, f64::min)
    }

    /// The dimension currently closest to exhaustion.
    pub fn bottleneck(&self) -> Resource {
        Resource::ALL
            .iter()
            .copied()
            .min_by(|&a, &b| {
                self.get(a)
                    .headroom()
                    .partial_cmp(&self.get(b).headroom())
                    .expect("headroom is finite")
            })
            .expect("ALL is non-empty")
    }

    /// Whether an additional session with the given footprint fits.
    pub fn admits(&self, bandwidth_mbps: f64, cpu_cores: f64, memory_mb: f64) -> bool {
        self.bandwidth.used + bandwidth_mbps <= self.bandwidth.capacity
            && self.cpu.used + cpu_cores <= self.cpu.capacity
            && self.memory.used + memory_mb <= self.memory.capacity
            && self.sessions.used + 1.0 <= self.sessions.capacity
    }

    /// Reserves resources for one session. Returns `false` (and reserves
    /// nothing) if the session does not fit.
    pub fn reserve(&mut self, bandwidth_mbps: f64, cpu_cores: f64, memory_mb: f64) -> bool {
        if !self.admits(bandwidth_mbps, cpu_cores, memory_mb) {
            return false;
        }
        self.bandwidth.used += bandwidth_mbps;
        self.cpu.used += cpu_cores;
        self.memory.used += memory_mb;
        self.sessions.used += 1.0;
        true
    }

    /// Releases resources of one departing session.
    pub fn release(&mut self, bandwidth_mbps: f64, cpu_cores: f64, memory_mb: f64) {
        self.bandwidth.used = (self.bandwidth.used - bandwidth_mbps).max(0.0);
        self.cpu.used = (self.cpu.used - cpu_cores).max(0.0);
        self.memory.used = (self.memory.used - memory_mb).max(0.0);
        self.sessions.used = (self.sessions.used - 1.0).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quotas() -> NodeQuotas {
        NodeQuotas::new(100.0, 2.0, 512.0, 50.0)
    }

    #[test]
    fn headroom_and_utilization() {
        let mut q = Quota::new(10.0);
        assert_eq!(q.headroom(), 1.0);
        q.used = 7.5;
        assert!((q.headroom() - 0.25).abs() < 1e-12);
        assert!((q.utilization() - 0.75).abs() < 1e-12);
        q.used = 20.0;
        assert_eq!(q.headroom(), 0.0);
    }

    #[test]
    fn zero_capacity_has_no_headroom() {
        assert_eq!(Quota::new(0.0).headroom(), 0.0);
    }

    #[test]
    fn availability_is_min_across_dimensions() {
        let mut q = quotas();
        // 10% bandwidth used but CPU nearly exhausted: availability must
        // follow CPU — the paper's point about non-bandwidth bottlenecks.
        q.bandwidth.used = 10.0;
        q.cpu.used = 1.9;
        assert!((q.availability() - 0.05).abs() < 1e-9);
        assert_eq!(q.bottleneck(), Resource::Cpu);
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut q = quotas();
        assert!(q.reserve(5.0, 0.1, 16.0));
        assert_eq!(q.sessions.used, 1.0);
        q.release(5.0, 0.1, 16.0);
        assert_eq!(q.bandwidth.used, 0.0);
        assert_eq!(q.sessions.used, 0.0);
    }

    #[test]
    fn reserve_rejects_overflow_without_partial_effects() {
        let mut q = quotas();
        q.memory.used = 510.0;
        assert!(!q.reserve(5.0, 0.1, 16.0));
        // Nothing was reserved.
        assert_eq!(q.bandwidth.used, 0.0);
        assert_eq!(q.sessions.used, 0.0);
    }

    #[test]
    fn session_count_limits() {
        let mut q = NodeQuotas::new(1000.0, 100.0, 10_000.0, 2.0);
        assert!(q.reserve(1.0, 0.01, 1.0));
        assert!(q.reserve(1.0, 0.01, 1.0));
        assert!(!q.reserve(1.0, 0.01, 1.0), "third session exceeds limit");
        assert_eq!(q.bottleneck(), Resource::Sessions);
    }

    #[test]
    fn release_clamps_at_zero() {
        let mut q = quotas();
        q.release(50.0, 1.0, 100.0);
        assert_eq!(q.bandwidth.used, 0.0);
        assert_eq!(q.availability(), 1.0);
    }
}
