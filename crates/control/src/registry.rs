//! Tree-based hash structure for candidate retrieval (§4.1.1).
//!
//! Top-K selection over ~1M nodes per request is too expensive, so the
//! scheduler first narrows the pool with a layered hash tree over static
//! attributes. Retrieval seeks exact matches along the full attribute
//! path (stream → ISP → node type → region); when too few nodes match,
//! the criteria are relaxed progressively in reverse priority order
//! (region first, then node type, then ISP, and finally the stream
//! constraint itself), broadening the search while keeping the most
//! important attributes pinned as long as possible.

use crate::features::{NodeClass, NodeId, StreamKey};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// The attribute path of one indexed entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttrPath {
    /// Substream the node is forwarding, or `None` for the idle index.
    pub stream: Option<StreamKey>,
    /// Node ISP.
    pub isp: u16,
    /// Node quality tier.
    pub class: NodeClass,
    /// Node region.
    pub region: u16,
}

/// A query: the client's preferred attribute values.
#[derive(Debug, Clone, Copy)]
pub struct AttrQuery {
    /// The substream being requested.
    pub stream: StreamKey,
    /// Client ISP (same-ISP nodes avoid cross-ISP transit).
    pub isp: u16,
    /// Preferred node class.
    pub class: NodeClass,
    /// Client region.
    pub region: u16,
}

/// How specific a retrieval result still is after relaxation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum MatchLevel {
    /// Full path matched: stream + ISP + class + region.
    Exact,
    /// Region relaxed.
    AnyRegion,
    /// Region and class relaxed.
    AnyClass,
    /// Region, class and ISP relaxed (stream still pinned).
    AnyIsp,
    /// Stream relaxed too: node not yet forwarding the substream.
    AnyStream,
}

/// The layered hash tree.
///
/// Levels are `stream → isp → class → region → {nodes}`, each level a
/// hash map, mirroring the paper's "specialized hash functions at each
/// layer". Nodes are indexed once per forwarded substream plus once in
/// the idle index (`stream = None`) so that not-yet-forwarding nodes are
/// reachable after full relaxation.
#[derive(Debug, Default)]
pub struct HashTreeRegistry {
    /// stream -> isp -> class -> region -> nodes
    ///
    /// Ordered maps keep retrieval order deterministic across runs —
    /// candidate ordering feeds probing, so it is behavioural.
    tree: BTreeMap<Option<StreamKey>, IspLevel>,
    /// Reverse index for O(1) removal.
    paths: HashMap<NodeId, Vec<AttrPath>>,
}

type RegionLevel = BTreeMap<u16, BTreeSet<NodeId>>;
type ClassLevel = BTreeMap<NodeClassKey, RegionLevel>;
type IspLevel = BTreeMap<u16, ClassLevel>;

/// `NodeClass` is not `Ord`/`Hash`-friendly as a map key via derive on
/// foreign maps; use a compact key type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct NodeClassKey(u8);

impl From<NodeClass> for NodeClassKey {
    fn from(c: NodeClass) -> Self {
        NodeClassKey(match c {
            NodeClass::HighQuality => 0,
            NodeClass::Normal => 1,
        })
    }
}

impl HashTreeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of indexed nodes.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    fn insert_path(&mut self, node: NodeId, path: AttrPath) {
        self.tree
            .entry(path.stream)
            .or_default()
            .entry(path.isp)
            .or_default()
            .entry(path.class.into())
            .or_default()
            .entry(path.region)
            .or_default()
            .insert(node);
    }

    fn remove_path(&mut self, node: NodeId, path: &AttrPath) {
        if let Some(isp_level) = self.tree.get_mut(&path.stream) {
            if let Some(class_level) = isp_level.get_mut(&path.isp) {
                if let Some(region_level) = class_level.get_mut(&path.class.into()) {
                    if let Some(nodes) = region_level.get_mut(&path.region) {
                        nodes.remove(&node);
                        if nodes.is_empty() {
                            region_level.remove(&path.region);
                        }
                    }
                    if region_level.is_empty() {
                        class_level.remove(&path.class.into());
                    }
                }
                if class_level.is_empty() {
                    isp_level.remove(&path.isp);
                }
            }
            if isp_level.is_empty() {
                self.tree.remove(&path.stream);
            }
        }
    }

    /// (Re-)indexes a node under its static attributes and the set of
    /// substreams it currently forwards.
    pub fn index_node(
        &mut self,
        node: NodeId,
        isp: u16,
        class: NodeClass,
        region: u16,
        forwarding: impl IntoIterator<Item = StreamKey>,
    ) {
        self.remove_node(node);
        let mut paths = vec![AttrPath {
            stream: None,
            isp,
            class,
            region,
        }];
        for key in forwarding {
            paths.push(AttrPath {
                stream: Some(key),
                isp,
                class,
                region,
            });
        }
        for p in &paths {
            self.insert_path(node, *p);
        }
        self.paths.insert(node, paths);
    }

    /// Removes a node from every index entry.
    pub fn remove_node(&mut self, node: NodeId) {
        if let Some(paths) = self.paths.remove(&node) {
            for p in paths {
                self.remove_path(node, &p);
            }
        }
    }

    fn collect_region(out: &mut Vec<NodeId>, region_level: &RegionLevel, region: Option<u16>) {
        match region {
            Some(r) => {
                if let Some(nodes) = region_level.get(&r) {
                    out.extend(nodes.iter().copied());
                }
            }
            None => {
                for nodes in region_level.values() {
                    out.extend(nodes.iter().copied());
                }
            }
        }
    }

    fn collect(
        &self,
        stream: Option<StreamKey>,
        isp: Option<u16>,
        class: Option<NodeClass>,
        region: Option<u16>,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        let Some(isp_level) = self.tree.get(&stream) else {
            return out;
        };
        let isps: Vec<&ClassLevel> = match isp {
            Some(i) => isp_level.get(&i).into_iter().collect(),
            None => isp_level.values().collect(),
        };
        for class_level in isps {
            let classes: Vec<&RegionLevel> = match class {
                Some(c) => class_level.get(&c.into()).into_iter().collect(),
                None => class_level.values().collect(),
            };
            for region_level in classes {
                Self::collect_region(&mut out, region_level, region);
            }
        }
        out
    }

    /// Retrieves at least `want` candidates for `query`, relaxing the
    /// attribute path progressively. Returns the nodes (deduplicated,
    /// most-specific matches first) and the coarsest relaxation level
    /// that was needed.
    pub fn retrieve(&self, query: &AttrQuery, want: usize) -> (Vec<NodeId>, MatchLevel) {
        type Plan = (
            MatchLevel,
            Option<StreamKey>,
            Option<u16>,
            Option<NodeClass>,
            Option<u16>,
        );
        let plans: [Plan; 5] = [
            (
                MatchLevel::Exact,
                Some(query.stream),
                Some(query.isp),
                Some(query.class),
                Some(query.region),
            ),
            (
                MatchLevel::AnyRegion,
                Some(query.stream),
                Some(query.isp),
                Some(query.class),
                None,
            ),
            (
                MatchLevel::AnyClass,
                Some(query.stream),
                Some(query.isp),
                None,
                None,
            ),
            (MatchLevel::AnyIsp, Some(query.stream), None, None, None),
            (MatchLevel::AnyStream, None, Some(query.isp), None, None),
        ];
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut level = MatchLevel::Exact;
        for (lvl, stream, isp, class, region) in plans {
            level = lvl;
            for n in self.collect(stream, isp, class, region) {
                if seen.insert(n) {
                    out.push(n);
                }
            }
            if out.len() >= want {
                return (out, level);
            }
        }
        // Final fallback: any idle node anywhere.
        for n in self.collect(None, None, None, None) {
            if seen.insert(n) {
                out.push(n);
            }
        }
        (out, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(stream_id: u64, substream: u16) -> StreamKey {
        StreamKey {
            stream_id,
            substream,
        }
    }

    fn setup() -> HashTreeRegistry {
        let mut reg = HashTreeRegistry::new();
        // Node 1: forwarding stream (7,0), ISP 1, HQ, region 10.
        reg.index_node(NodeId(1), 1, NodeClass::HighQuality, 10, [key(7, 0)]);
        // Node 2: same ISP/class, different region, same stream.
        reg.index_node(NodeId(2), 1, NodeClass::HighQuality, 20, [key(7, 0)]);
        // Node 3: same ISP, Normal class, forwarding same stream.
        reg.index_node(NodeId(3), 1, NodeClass::Normal, 10, [key(7, 0)]);
        // Node 4: different ISP, forwarding same stream.
        reg.index_node(NodeId(4), 2, NodeClass::HighQuality, 10, [key(7, 0)]);
        // Node 5: idle node in client's ISP.
        reg.index_node(NodeId(5), 1, NodeClass::Normal, 10, []);
        reg
    }

    fn query() -> AttrQuery {
        AttrQuery {
            stream: key(7, 0),
            isp: 1,
            class: NodeClass::HighQuality,
            region: 10,
        }
    }

    #[test]
    fn exact_match_first() {
        let reg = setup();
        let (nodes, level) = reg.retrieve(&query(), 1);
        assert_eq!(level, MatchLevel::Exact);
        assert_eq!(nodes[0], NodeId(1));
    }

    #[test]
    fn relaxes_region_then_class_then_isp() {
        let reg = setup();
        let (nodes, level) = reg.retrieve(&query(), 2);
        assert_eq!(level, MatchLevel::AnyRegion);
        assert!(nodes.contains(&NodeId(2)));

        let (nodes, level) = reg.retrieve(&query(), 3);
        assert_eq!(level, MatchLevel::AnyClass);
        assert!(nodes.contains(&NodeId(3)));

        let (nodes, level) = reg.retrieve(&query(), 4);
        assert_eq!(level, MatchLevel::AnyIsp);
        assert!(nodes.contains(&NodeId(4)));
    }

    #[test]
    fn relaxing_to_idle_nodes_last() {
        let reg = setup();
        let (nodes, level) = reg.retrieve(&query(), 5);
        assert_eq!(level, MatchLevel::AnyStream);
        assert!(nodes.contains(&NodeId(5)));
        // Specific matches still come first.
        assert_eq!(nodes[0], NodeId(1));
    }

    #[test]
    fn no_duplicates_across_relaxations() {
        let reg = setup();
        let (nodes, _) = reg.retrieve(&query(), 100);
        let unique: HashSet<_> = nodes.iter().collect();
        assert_eq!(unique.len(), nodes.len());
        assert_eq!(nodes.len(), 5);
    }

    #[test]
    fn reindex_updates_forwarding() {
        let mut reg = setup();
        // Node 5 starts forwarding the stream: should now match without
        // full relaxation.
        reg.index_node(NodeId(5), 1, NodeClass::Normal, 10, [key(7, 0)]);
        let (nodes, level) = reg.retrieve(&query(), 3);
        assert_eq!(level, MatchLevel::AnyClass);
        assert!(nodes.contains(&NodeId(5)));
    }

    #[test]
    fn remove_node_clears_all_paths() {
        let mut reg = setup();
        reg.remove_node(NodeId(1));
        let (nodes, _) = reg.retrieve(&query(), 100);
        assert!(!nodes.contains(&NodeId(1)));
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn different_substreams_are_distinct() {
        let mut reg = HashTreeRegistry::new();
        reg.index_node(NodeId(1), 1, NodeClass::Normal, 1, [key(7, 0)]);
        reg.index_node(NodeId(2), 1, NodeClass::Normal, 1, [key(7, 1)]);
        let q = AttrQuery {
            stream: key(7, 1),
            isp: 1,
            class: NodeClass::Normal,
            region: 1,
        };
        let (nodes, level) = reg.retrieve(&q, 1);
        assert_eq!(level, MatchLevel::Exact);
        assert_eq!(nodes[0], NodeId(2));
    }

    #[test]
    fn empty_registry_returns_nothing() {
        let reg = HashTreeRegistry::new();
        let (nodes, _) = reg.retrieve(&query(), 3);
        assert!(nodes.is_empty());
    }
}
