//! Distributed frame sequencing walkthrough (§5.2 / Fig 7).
//!
//! ```sh
//! cargo run --release --example frame_sequencing
//! ```
//!
//! Demonstrates the data-plane machinery in isolation, without the
//! simulator: two best-effort relays observe the same stream, generate
//! identical local frame chains, packetise their substreams, and a
//! client merges the chains into a global playout order — surviving a
//! lost chain, out-of-order arrival and a corrupted footprint.

use rlive_data::sequencing::{GlobalChain, MatchResult};
use rlive_media::footprint::{ChainGenerator, LocalChain};
use rlive_media::gop::{GopConfig, GopGenerator};
use rlive_media::packet::{packetize, PACKET_PAYLOAD};
use rlive_media::substream::substream_of;
use rlive_sim::SimRng;

fn main() {
    // The stream source: a 30 fps GoP generator.
    let mut source = GopGenerator::new(1, GopConfig::default(), SimRng::new(99));
    let frames = source.take_frames(12);
    println!(
        "stream: {} frames, dts {}..{} ms",
        frames.len(),
        frames[0].dts_ms(),
        frames[11].dts_ms()
    );

    // Two relays serving substreams 0 and 1 of a K=2 split. Both see the
    // full header sequence (the CDN ships headers of all substreams) and
    // therefore generate identical chains.
    let mut relay_a = ChainGenerator::new(PACKET_PAYLOAD);
    let mut relay_b = ChainGenerator::new(PACKET_PAYLOAD);
    let mut chains: Vec<LocalChain> = Vec::new();
    for f in &frames {
        let ca = relay_a.observe(&f.header);
        let cb = relay_b.observe(&f.header);
        assert_eq!(ca, cb, "relays independently derive identical chains");
        chains.push(ca);
    }
    println!("relays generated identical local chains for all frames");

    // Relay A packetises the frames of its substream.
    let frame0 = &frames[0];
    let ss = substream_of(&frame0.header, 2).0;
    let pkts = packetize(frame0, ss, &chains[0], /* publisher */ 7);
    println!(
        "frame dts={} -> substream {}, {} packets of <= {} B payload, {} B chain metadata each",
        frame0.dts_ms(),
        ss,
        pkts.len(),
        PACKET_PAYLOAD,
        chains[0].to_bytes().len(),
    );

    // The client merges chains into a global order.
    let mut global = GlobalChain::new();
    for f in &frames {
        global.ingest_header(f.header);
    }

    // Scenario from Fig 7(b): the chain of frame 4 is lost entirely, but
    // frame 5's chain overlaps the global chain's terminal frame and
    // bridges the gap.
    assert_eq!(global.ingest_chain(&chains[3]), MatchResult::Matched);
    println!(
        "\ningested chain of frame 3 -> global chain {:?}",
        global.dts_sequence()
    );
    println!("chain of frame 4 LOST in transit");
    assert_eq!(global.ingest_chain(&chains[5]), MatchResult::Matched);
    println!(
        "ingested chain of frame 5 -> global chain {:?}",
        global.dts_sequence()
    );

    // A chain that cannot connect yet is pooled (misMatchChains)...
    assert_eq!(global.ingest_chain(&chains[11]), MatchResult::Deferred);
    println!(
        "chain of frame 11 deferred (no continuity), pool size {}",
        global.mismatched_count()
    );
    // ...and drains automatically once the bridge arrives.
    assert_eq!(global.ingest_chain(&chains[8]), MatchResult::Matched);
    println!(
        "chain of frame 8 bridged the gap -> global chain {:?} (pool {})",
        global.dts_sequence(),
        global.mismatched_count()
    );

    // A forged footprint fails CRC validation and is evicted.
    let mut forged = chains[11].footprints().to_vec();
    forged.last_mut().expect("non-empty").crc ^= 0xBAD_C0DE;
    match global.ingest_chain(&LocalChain::new(forged)) {
        MatchResult::Rejected => println!("forged chain rejected by CRC validation"),
        other => println!("unexpected: {other:?}"),
    }
    // The genuine chain still attaches afterwards.
    assert_eq!(global.ingest_chain(&chains[11]), MatchResult::Matched);
    println!("genuine chain of frame 11 accepted after the forgery");

    // Playout order pops off the linked head.
    let mut order = Vec::new();
    while let Some(fp) = global.pop_linked_head() {
        order.push(fp.dts_ms);
    }
    println!("\nplayout order: {order:?}");
    assert_eq!(
        order,
        frames.iter().map(|f| f.dts_ms()).collect::<Vec<_>>(),
        "client reconstructed the exact source order"
    );
    println!("client reconstructed the exact source order — no central sequencer involved");
}
