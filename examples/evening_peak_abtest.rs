//! The §7.1 evening-peak A/B test, scaled to a laptop.
//!
//! ```sh
//! cargo run --release --example evening_peak_abtest [seed]
//! ```
//!
//! Splits viewers by user-id hash into a CDN-only control group and an
//! RLive test group inside one shared world (the paper's methodology),
//! then prints the relative QoE differences Fig 9 and Table 2 report.

use rlive::abtest::AbTest;
use rlive::config::{DeliveryMode, SystemConfig};
use rlive_sim::SimDuration;
use rlive_workload::scenario::Scenario;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    let mut test = AbTest {
        scenario: Scenario::evening_peak().scaled(0.2),
        config: SystemConfig::default(),
        control: DeliveryMode::CdnOnly,
        test: DeliveryMode::RLive,
        seed,
    };
    test.scenario.duration = SimDuration::from_secs(240);
    test.scenario.streams = 4;
    test.scenario.population.isps = 2;
    test.scenario.population.regions = 4;
    test.config.cdn_edge_mbps = 130;
    test.config.multi_source_after = SimDuration::from_secs(10);
    test.config.popularity_threshold = 2;

    println!("Evening-peak A/B: control = CDN-only, test = RLive (seed {seed})");
    let report = test.run();

    let c = &report.run.control_qoe;
    let t = &report.run.test_qoe;
    println!("\n              control      test");
    println!("views         {:>7}   {:>7}", c.views, t.views);
    println!(
        "rebuf/100s    {:>7.2}   {:>7.2}",
        c.rebuffers_per_100s.mean(),
        t.rebuffers_per_100s.mean()
    );
    println!(
        "bitrate Mbps  {:>7.2}   {:>7.2}",
        c.bitrate_bps.mean() / 1e6,
        t.bitrate_bps.mean() / 1e6
    );
    println!(
        "E2E ms        {:>7.0}   {:>7.0}",
        c.e2e_latency_ms.mean(),
        t.e2e_latency_ms.mean()
    );

    println!("\n=== Test vs control (paper Fig 9 / Table 2) ===");
    println!(
        "rebuffering        {:+.1} %   (paper: about -15 %)",
        report.diff.rebuffer_events_pct
    );
    println!(
        "bitrate            {:+.1} %   (paper: about +10.5 %)",
        report.diff.bitrate_pct
    );
    println!(
        "E2E latency        {:+.1} %   (paper: +4 to +6 %)",
        report.diff.e2e_latency_pct
    );
    println!(
        "equivalent traffic {:+.1} %   (paper: about -8 %)",
        report.eqt_pct
    );
    println!(
        "view split         {:+.2} %  (paper: ~0.01 %, Fig 8)",
        report.view_split_pct
    );
    let (cpu, mem, temp, bat) = report.energy_delta;
    println!("\n=== Client energy deltas (paper Fig 10) ===");
    println!("cpu {cpu:+.2} pp   mem {mem:+.2} pp   temp {temp:+.3} pp   battery {bat:+.3} pp");
}
