//! A guided tour of the collaborative control plane (§4), without the
//! network simulator: registration, heartbeats, candidate
//! recommendation, client probing, RTT-based switching and the edge
//! adviser's two triggers.
//!
//! ```sh
//! cargo run --release --example control_plane_tour
//! ```

use rlive_control::adviser::{AdviserConfig, EdgeAdviser};
use rlive_control::client::{
    ClientController, ClientControllerConfig, ProbeOutcome, SwitchDecision,
};
use rlive_control::features::{
    ClientId, ClientInfo, ConnectionType, Heartbeat, NodeClass, NodeId, NodeStatus, StreamKey,
};
use rlive_control::scheduler::{GlobalScheduler, SchedulerConfig};
use rlive_control::scoring::Platform;
use rlive_control::StaticFeatures;
use rlive_sim::nat::TraversalModel;
use rlive_sim::{SimDuration, SimRng, SimTime};
use rlive_workload::nodes::{NodePopulation, PopulationConfig};

fn main() {
    let mut rng = SimRng::new(7);

    // 1. A population of best-effort nodes registers with the scheduler.
    let pop = NodePopulation::generate(
        &PopulationConfig {
            count: 400,
            isps: 2,
            regions: 4,
            ..PopulationConfig::default()
        },
        &mut rng,
    );
    let mut scheduler = GlobalScheduler::new(SchedulerConfig::default(), rng.fork(1));
    for spec in &pop.nodes {
        let statics = StaticFeatures {
            isp: spec.isp,
            region: spec.region,
            bgp_prefix: spec.bgp_prefix,
            geo: spec.geo,
            class: if spec.high_quality {
                NodeClass::HighQuality
            } else {
                NodeClass::Normal
            },
            conn_type: ConnectionType::Cable,
            nat: spec.nat,
        };
        scheduler.register_node(
            NodeId(spec.id),
            statics,
            NodeStatus::idle(spec.capacity_mbps),
        );
    }
    println!("registered {} best-effort nodes", scheduler.node_count());

    // 2. A few nodes start forwarding substream (7, 0) and heartbeat.
    let key = StreamKey {
        stream_id: 7,
        substream: 0,
    };
    for id in [3u64, 11, 42] {
        let mut status = NodeStatus::idle(pop.nodes[id as usize].capacity_mbps);
        status.forwarding.insert(key);
        status.used_mbps = 4.0;
        let hb = Heartbeat {
            node: NodeId(id),
            at: SimTime::from_secs(5),
            status,
        };
        let wire = hb.encode();
        println!("node {id} heartbeats ({} bytes on the wire)", wire.len());
        scheduler.ingest_heartbeat(Heartbeat::decode(&wire).expect("round trip"));
    }

    // 3. A client asks for candidates; the scheduler retrieves from the
    //    tree-hash registry, scores per-client and returns the top-K.
    let client = ClientInfo {
        id: ClientId(1),
        isp: 0,
        region: 1,
        bgp_prefix: 9,
        geo: (5.0, 5.0),
        platform: Platform::Android,
    };
    let rec = scheduler.recommend(SimTime::from_secs(6), &client, key);
    println!(
        "\nrecommendation: {} candidates in {} (match level {:?})",
        rec.candidates.len(),
        rec.service_time,
        rec.match_level
    );
    for c in rec.candidates.iter().take(5) {
        println!(
            "  node {:>4}  score {:.3}  forwarding: {}",
            c.node.0, c.score, c.already_forwarding
        );
    }

    // 4. The client probes the top three (application-level, through
    //    real NAT traversal odds) and picks the first responder.
    let mut controller = ClientController::new(ClientControllerConfig::default());
    let traversal = TraversalModel::default();
    let now = SimTime::from_secs(6);
    let ids: Vec<NodeId> = rec.candidates.iter().map(|c| c.node).collect();
    let outcomes: Vec<ProbeOutcome> = controller
        .probe_list(now, &ids)
        .into_iter()
        .map(|n| {
            let spec = &pop.nodes[n.0 as usize];
            let ok = traversal.attempt(spec.nat, &mut rng);
            scheduler.observe_connection(now, n, ok);
            println!(
                "probe node {:>4} ({:?}): {}",
                n.0,
                spec.nat,
                if ok { "ok" } else { "failed" }
            );
            ProbeOutcome {
                node: n,
                rtt: ok.then(|| SimDuration::from_millis(spec.base_rtt_ms)),
            }
        })
        .collect();
    let publisher = controller.select_from_probes(now, &outcomes);
    println!("selected publisher: {publisher:?}");

    // 5. Later, QoS degrades; the switching rule needs a margin over
    //    t_change before it moves.
    if let Some(current) = publisher {
        let candidates = [
            (NodeId(200), SimDuration::from_millis(18)),
            (NodeId(201), SimDuration::from_millis(35)),
        ];
        for current_rtt in [40u64, 300] {
            let d = controller.assess_switch(
                SimTime::from_secs(30),
                current,
                SimDuration::from_millis(current_rtt),
                &candidates,
            );
            println!("current RTT {current_rtt} ms -> {d:?}");
            assert!(current_rtt != 300 || d == SwitchDecision::SwitchTo(NodeId(200)));
        }
    }

    // 6. The edge adviser fires its two triggers.
    let mut adviser = EdgeAdviser::new(NodeId(3), AdviserConfig::default());
    for _ in 0..6 {
        adviser.record_utilization(0.12);
    }
    for i in 0..19 {
        adviser.record_connection_qos(ClientId(i), 45.0 + i as f64);
    }
    adviser.record_connection_qos(ClientId(99), 600.0); // one broken link
    let stream_util = scheduler.stream_utilization(SimTime::from_secs(40), key);
    let suggestions = adviser.evaluate(SimTime::from_secs(40), key, stream_util);
    println!("\nadviser suggestions:");
    for s in &suggestions {
        println!("  {s:?}");
    }
    assert!(
        !suggestions.is_empty(),
        "underutilised node with one outlier connection must suggest"
    );
    println!("\ntour complete.");
}
