//! The §7.3.3 FIFA World Cup case study, scaled to a laptop.
//!
//! ```sh
//! cargo run --release --example fifa_worldcup [seed]
//! ```
//!
//! Mega-broadcast bursts stress delivery with massive short-term
//! bandwidth surges that cannot be absorbed by provisioning dedicated
//! capacity in time. The example runs the burst scenario twice — once
//! CDN-only, once with RLive mobilising best-effort resources — and
//! compares how each handles the surge (paper Table 4).

use rlive::config::{DeliveryMode, SystemConfig};
use rlive::qoe::GroupQoe;
use rlive::world::{GroupPolicy, RunReport, World};
use rlive_sim::SimDuration;
use rlive_workload::scenario::Scenario;

fn run(mode: DeliveryMode, seed: u64) -> RunReport {
    let mut scenario = Scenario::fifa_world_cup().scaled(0.15);
    scenario.duration = SimDuration::from_secs(240);
    scenario.population.isps = 2;
    scenario.population.regions = 4;
    let mut cfg = SystemConfig::for_mode(mode);
    // The match surge dwarfs provisioned dedicated capacity.
    cfg.cdn_edge_mbps = 150;
    cfg.multi_source_after = SimDuration::from_secs(10);
    cfg.popularity_threshold = 2;
    World::new(scenario, cfg, GroupPolicy::uniform(mode), seed).run()
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);

    println!("FIFA World Cup burst: ~3 mega-streams, surged demand (seed {seed})\n");
    let cdn = run(DeliveryMode::CdnOnly, seed);
    let rlive = run(DeliveryMode::RLive, seed);

    let row = |name: &str, c: f64, r: f64, better_low: bool| {
        let diff = GroupQoe::diff_pct(r, c);
        let marker = if (diff < 0.0) == better_low {
            "improved"
        } else {
            "regressed"
        };
        println!("{name:<22} {c:>9.2} {r:>9.2}  {diff:+6.1} % ({marker})");
    };

    println!("{:<22} {:>9} {:>9}", "", "CDN-only", "RLive");
    row(
        "views served",
        cdn.test_qoe.views as f64,
        rlive.test_qoe.views as f64,
        false,
    );
    row(
        "rebuffers /100s",
        cdn.test_qoe.rebuffers_per_100s.mean(),
        rlive.test_qoe.rebuffers_per_100s.mean(),
        true,
    );
    row(
        "bitrate Mbps",
        cdn.test_qoe.bitrate_bps.mean() / 1e6,
        rlive.test_qoe.bitrate_bps.mean() / 1e6,
        false,
    );
    row(
        "E2E latency ms",
        cdn.test_qoe.e2e_latency_ms.mean(),
        rlive.test_qoe.e2e_latency_ms.mean(),
        true,
    );

    println!(
        "\nPeak delivered bandwidth: CDN-only {:.1} Mbps, RLive {:.1} Mbps \
         ({:.1} Mbps of it from best-effort nodes)",
        cdn.test_traffic.client_bytes() as f64 * 8.0 / 1e6 / cdn.duration.as_secs_f64(),
        rlive.test_traffic.client_bytes() as f64 * 8.0 / 1e6 / rlive.duration.as_secs_f64(),
        rlive.test_traffic.best_effort_serving as f64 * 8.0 / 1e6 / rlive.duration.as_secs_f64(),
    );
    println!(
        "Scheduler handled {} recommendation requests (paper: 1.7M QPS at peak).",
        rlive.scheduler_requests
    );
    println!(
        "\nPaper Table 4 (Dec 4 match): +21.78 % views, -8.82 % rebuffering, \
         +1.72 % bitrate, -4.75 % E2E latency for RLive vs CDNs."
    );
}
