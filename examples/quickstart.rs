//! Quickstart: run a small RLive world and print its QoE report.
//!
//! ```sh
//! cargo run --release --example quickstart [seed]
//! ```
//!
//! Builds an evening-peak scenario at laptop scale, serves every viewer
//! through RLive's multi-source data plane, and prints the headline
//! quality-of-experience and traffic numbers.

use rlive::config::{DeliveryMode, SystemConfig};
use rlive::world::{GroupPolicy, World};
use rlive_sim::SimDuration;
use rlive_workload::scenario::Scenario;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // A scaled-down evening peak: ~120 concurrent viewers, 4 streams,
    // 80 best-effort relays, 4 minutes of simulated time.
    let mut scenario = Scenario::evening_peak().scaled(0.2);
    scenario.duration = SimDuration::from_secs(240);
    scenario.streams = 4;
    scenario.population.isps = 2;
    scenario.population.regions = 4;

    let mut cfg = SystemConfig::for_mode(DeliveryMode::RLive);
    cfg.cdn_edge_mbps = 140;
    cfg.multi_source_after = SimDuration::from_secs(10);
    cfg.popularity_threshold = 2;

    println!(
        "Running RLive: {} viewers peak, {} streams, {} best-effort nodes, {}s (seed {seed})",
        scenario.peak_viewers,
        scenario.streams,
        scenario.population.count,
        scenario.duration.as_secs_f64(),
    );

    let report = World::new(
        scenario,
        cfg,
        GroupPolicy::uniform(DeliveryMode::RLive),
        seed,
    )
    .run();

    print!("\n{}", rlive::report::format_full(&report, 1.35));
}
