#!/usr/bin/env bash
# CI entry point: build, test, format check, lint. Fails on the first
# broken step. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

# Release profile: the world simulations are several times slower under
# debug, and this reuses the build step's cache.
echo "==> cargo test -q"
cargo test --release -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --release -- -D warnings

# Examples are documentation that must keep running: smoke-run the
# quickstart against the release build.
echo "==> cargo run --release --example quickstart"
cargo run --release --example quickstart

# Smoke runs. Output correctness is pinned by the golden tests; these
# catch pool deadlocks/panics that only appear end-to-end. Each smoke's
# stdout is also screened for NaN: the metric accumulators skip and
# count non-finite samples, so a NaN in a table means that guard broke.
smoke() {
  local out
  out=$(cargo run --release -p rlive-bench --bin experiments -- "$@")
  if grep -qw "NaN" <<< "$out"; then
    echo "NaN leaked into experiment stdout: experiments $*" >&2
    exit 1
  fi
}

echo "==> experiments fig10 7 --world-jobs 2 (sharded smoke)"
smoke fig10 7 --world-jobs 2

echo "==> experiments fleet 3 7 --jobs 2 --world-jobs 2 (fleet smoke)"
smoke fleet 3 7 --jobs 2 --world-jobs 2

echo "==> experiments obs 7 --jobs 2 --world-jobs 2 (obs smoke)"
smoke obs 7 --jobs 2 --world-jobs 2

echo "==> experiments adaptive 3 7 --jobs 2 --world-jobs 2 (adaptive policy smoke)"
smoke adaptive 3 7 --jobs 2 --world-jobs 2

echo "==> experiments recover 3 7 --jobs 2 --world-jobs 2 (racing recovery smoke)"
smoke recover 3 7 --jobs 2 --world-jobs 2

# Fuzz smoke: a tiny coverage-driven campaign exercising mutation,
# batch evaluation and report rendering end-to-end under both worker
# pools. Campaign correctness is pinned by the fuzz golden digest and
# crates/core/tests/fuzz_invariance.rs; the checked-in worst-case
# scenario replays (crates/core/tests/regression_scenarios.rs) already
# ran in the test step above.
echo "==> experiments fuzz 2 7 --jobs 2 --world-jobs 2 (scenario fuzz smoke)"
smoke fuzz 2 7 --jobs 2 --world-jobs 2

# SLO smoke: the alert engine + incident timeline over the scripted
# storm fleet, under both worker pools. Report correctness is pinned by
# the slo golden digest and crates/sim/tests/slo_invariance.rs.
echo "==> experiments slo 7 --jobs 2 --world-jobs 2 (SLO/alerting smoke)"
smoke slo 7 --jobs 2 --world-jobs 2

# Obs export determinism: two back-to-back runs must produce
# byte-identical JSONL/CSV dumps (the golden digest pins stdout; this
# pins the export files, which stdout does not cover).
echo "==> experiments obs export determinism"
obs_tmp=$(mktemp -d)
bench_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp" "$bench_tmp"' EXIT
cargo run --release -p rlive-bench --bin experiments -- \
  obs 7 --obs-export "$obs_tmp/a" > /dev/null
cargo run --release -p rlive-bench --bin experiments -- \
  obs 7 --obs-export "$obs_tmp/b" > /dev/null
diff "$obs_tmp/a.jsonl" "$obs_tmp/b.jsonl"
diff "$obs_tmp/a.csv" "$obs_tmp/b.csv"
if grep -qw "NaN" "$obs_tmp/a.jsonl" "$obs_tmp/a.csv"; then
  echo "NaN leaked into obs export" >&2
  exit 1
fi

# Streamed-vs-batch export identity: --obs-stream writes each sealed
# window as it seals (evicting it, bounded obs memory) and must produce
# the exact bytes of --obs-export's end-of-run batch dump — the
# streamed decomposition is header + per-window chunks + tail by
# construction, and this pins it end-to-end (sharded, too).
echo "==> experiments obs streamed-vs-batch export identity"
cargo run --release -p rlive-bench --bin experiments -- \
  obs 7 --obs-stream "$obs_tmp/streamed" --world-jobs 2 > /dev/null
diff "$obs_tmp/a.jsonl" "$obs_tmp/streamed.jsonl"
diff "$obs_tmp/a.csv" "$obs_tmp/streamed.csv"

# Bench smoke: run the quick tier, schema-validate what it wrote, and
# compare worlds/sec against the committed BENCH_7.json baseline. The
# threshold is generous (fails below 25% of baseline): CI machines
# vary wildly, so this catches order-of-magnitude regressions and
# schema drift, not noise.
echo "==> experiments bench --quick (bench smoke + baseline diff)"
cargo run --release -p rlive-bench --bin experiments -- \
  bench --quick --out "$bench_tmp/bench_quick.json" --baseline BENCH_7.json
cargo run --release -p rlive-bench --bin experiments -- \
  bench --check "$bench_tmp/bench_quick.json"

# Nightly tier: the #[ignore]d suites (full golden sweep sequential and
# sharded, both expensive). Opt in with RLIVE_CI_NIGHTLY=1.
if [[ "${RLIVE_CI_NIGHTLY:-0}" == "1" ]]; then
  echo "==> cargo test -q -- --ignored (nightly tier)"
  cargo test --release -q -- --ignored

  # Full-scale bench tier: 100k nodes takes ~10+ minutes, far too slow
  # for every push, but nightly it pins the large-world perf envelope.
  echo "==> experiments bench --tier 100k (nightly bench tier)"
  cargo run --release -p rlive-bench --bin experiments -- \
    bench --tier 100k --out "$bench_tmp/bench_100k.json" --baseline BENCH_7.json

  # Full-budget fuzz campaign: the per-push smoke runs 2 candidates;
  # nightly runs the discovery-scale budget that found the checked-in
  # regression scenarios, still NaN-screened and seed-deterministic.
  echo "==> experiments fuzz 12 7 (nightly fuzz budget)"
  smoke fuzz 12 7
fi

# API docs must build warning-free (broken intra-doc links, missing
# docs on public items under #[warn(missing_docs)] crates).
echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> CI green"
