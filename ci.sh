#!/usr/bin/env bash
# CI entry point: build, test, format check, lint. Fails on the first
# broken step. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

# Release profile: the world simulations are several times slower under
# debug, and this reuses the build step's cache.
echo "==> cargo test -q"
cargo test --release -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --release -- -D warnings

# Examples are documentation that must keep running: smoke-run the
# quickstart against the release build.
echo "==> cargo run --release --example quickstart"
cargo run --release --example quickstart

# API docs must build warning-free (broken intra-doc links, missing
# docs on public items under #[warn(missing_docs)] crates).
echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> CI green"
