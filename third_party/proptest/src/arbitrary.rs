//! `any::<T>()` support for the vendored proptest subset.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude —
        // enough for the numeric properties in this repo without the
        // NaN/Inf edge cases real proptest also explores.
        let mag = (rng.next_f64() * 2.0 - 1.0) * 1e9;
        mag * rng.next_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy yielding arbitrary values of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::new(5);
        let a = any::<u64>().generate(&mut rng);
        let b = any::<u64>().generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn any_bool_covers_both() {
        let mut rng = TestRng::new(6);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[any::<bool>().generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
