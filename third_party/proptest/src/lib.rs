//! Minimal offline subset of the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the slice of proptest the repo's property tests use:
//! the [`proptest!`] macro, `prop_assert*` macros, range / tuple /
//! [`Just`](strategy::Just) / [`prop_oneof!`] / `prop::collection::vec` strategies,
//! [`any`](arbitrary::any), and [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from real proptest, deliberately accepted:
//! - Cases are generated from a deterministic per-test seed (derived
//!   from the test name), so every run explores the same inputs —
//!   failures are always reproducible without a persistence file.
//! - No shrinking: a failing case reports its case index and message.
//! - `proptest-regressions` files are not replayed; regressions that
//!   matter are pinned as explicit unit tests instead (see
//!   `crates/data/src/reorder.rs` for the pattern).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of `proptest::prop` (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}: `{:?}` == `{:?}`",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Chooses uniformly between the listed strategies (all must yield the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
