//! Deterministic case runner and RNG for the vendored proptest subset.

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure (or rejection) of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic generator feeding the strategies: splitmix64, seeded
/// per test and per case so runs are bit-for-bit reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `cases` deterministic cases of the property `body`. Panics with
/// the test name, case index and failure message if a case fails, so
/// the case can be replayed by re-running the test.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut rejected = 0u32;
    let mut case = 0u64;
    let mut executed = 0u32;
    while executed < config.cases {
        let mut rng = TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case #{case}: {msg}");
            }
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(16).max(256),
                    "proptest `{name}`: too many rejected cases ({why})"
                );
            }
        }
        case += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_bounded() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        run_cases(&ProptestConfig::with_cases(4), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
