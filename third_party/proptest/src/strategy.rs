//! Value-generation strategies for the vendored proptest subset.

use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates values of an associated type from a deterministic RNG.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// directly yields a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values (regenerates until `f` accepts, with a
    /// retry bound).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Boxes the strategy for heterogeneous collections.
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over `options`; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*
    };
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F2);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let s = (-10i64..10).generate(&mut rng);
            assert!((-10..10).contains(&s));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strat = (0u64..10, 0u64..10).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) < 19);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let u = Union::new(vec![Box::new(Just(1u8)), Box::new(Just(2u8))]);
        let mut rng = TestRng::new(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
