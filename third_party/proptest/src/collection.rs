//! Collection strategies (`prop::collection::vec`) for the vendored
//! proptest subset.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy yielding `Vec`s whose length is drawn from a range and
/// whose elements come from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty size range");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Mirrors `proptest::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_bounds() {
        let strat = vec(0u32..5, 2..7);
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
