//! No-op derive macros standing in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serde facade (see `third_party/serde`).
//! Serialization is not exercised anywhere in the repo — the derives
//! exist so `#[derive(Serialize, Deserialize)]` annotations compile —
//! and the `serde` facade provides blanket trait impls, so these
//! derives expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the blanket impl in the vendored `serde`
/// crate already covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: the blanket impl in the vendored `serde`
/// crate already covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
