//! Minimal offline subset of the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the slice of criterion's API the benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is simple but honest: each benchmark is warmed up, then
//! timed over enough iterations to fill a short measurement window, and
//! the mean ns/iter (plus derived throughput) is printed. There are no
//! statistical plots or outlier analyses — for regression-grade numbers
//! swap the real criterion crate back in.

use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_window: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let window = self.measurement_window;
        run_one(&name.into(), None, window, f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count (accepted for API compatibility; the
    /// simplified harness times one window regardless).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.throughput, self.criterion.measurement_window, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    window: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate: run once to estimate per-iteration cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (window.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns_per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns_per_iter / 1e9);
            println!("bench {name:<50} {ns_per_iter:>14.1} ns/iter {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns_per_iter / 1e9) / 1e6;
            println!("bench {name:<50} {ns_per_iter:>14.1} ns/iter {rate:>12.1} MB/s");
        }
        None => println!("bench {name:<50} {ns_per_iter:>14.1} ns/iter"),
    }
}

/// Declares a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion {
            measurement_window: Duration::from_millis(1),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_with_throughput() {
        let mut c = Criterion {
            measurement_window: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(5);
        group.bench_function("t", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
