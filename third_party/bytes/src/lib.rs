//! Minimal offline subset of the `bytes` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the slice of the `bytes` API the repo actually uses:
//! [`Bytes`] (cheaply cloneable, sliceable byte buffer), [`BytesMut`]
//! (growable builder), and the [`Buf`] / [`BufMut`] cursor traits.
//! Semantics match the real crate for this subset, so swapping the
//! real dependency back in requires no call-site changes.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a `Bytes` view of a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-view of `range` without copying.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A growable byte buffer used to build wire messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Resizes the buffer, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Copies the buffer into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::from(self.data.clone()).fmt(f)
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_mut_round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0a0b_0c0d_0e0f);
        b.put_slice(&[0xff]);
        assert_eq!(b.len(), 16);
        let frozen = b.freeze();
        assert_eq!(frozen[0], 1);
        assert_eq!(frozen.len(), 16);
        let mut cursor = frozen.clone();
        assert_eq!(cursor.get_u8(), 1);
        assert_eq!(cursor.get_u16(), 0x0203);
        assert_eq!(cursor.get_u32(), 0x0405_0607);
        assert_eq!(cursor.get_u64(), 0x0809_0a0b_0c0d_0e0f);
        assert_eq!(cursor.remaining(), 1);
    }

    #[test]
    fn bytes_advance_and_slice() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mut c = b.clone();
        c.advance(2);
        assert_eq!(&c[..], &[2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(b.len(), 6, "advance on a clone leaves the source intact");
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![1, 2, 3]);
        let mut c = Bytes::from(vec![0, 1, 2, 3]);
        c.advance(1);
        assert_eq!(a, c);
    }
}
