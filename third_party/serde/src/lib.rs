//! Minimal offline facade for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors this facade. The repo only uses serde for
//! `#[derive(Serialize, Deserialize)]` annotations (no serializer is
//! ever instantiated), so marker traits with blanket impls are
//! sufficient: every type trivially satisfies `Serialize` /
//! `Deserialize` bounds, and the derives (see
//! `third_party/serde_derive`) expand to nothing.
//!
//! If real serialization is ever needed, replace this facade with the
//! actual `serde` crate — the API surface used by the repo is a strict
//! subset, so no call sites need to change.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for
/// all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::de`, so `serde::de::DeserializeOwned` paths
/// resolve.
pub mod de {
    pub use crate::DeserializeOwned;
}
