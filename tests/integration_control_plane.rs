//! Cross-crate control-plane integration: workload-generated node
//! populations registered into the global scheduler, recommendation +
//! probing + switching flows, and adviser interplay.

use rlive_control::adviser::{AdviserConfig, EdgeAdviser, SwitchSuggestion};
use rlive_control::client::{
    ClientController, ClientControllerConfig, ProbeOutcome, SwitchDecision,
};
use rlive_control::features::{
    ClientId, ClientInfo, ConnectionType, Heartbeat, NodeClass, NodeId, NodeStatus, StaticFeatures,
    StreamKey,
};
use rlive_control::scheduler::{GlobalScheduler, SchedulerConfig};
use rlive_control::scoring::Platform;
use rlive_sim::nat::TraversalModel;
use rlive_sim::{SimDuration, SimRng, SimTime};
use rlive_workload::nodes::{NodePopulation, PopulationConfig};

fn key(substream: u16) -> StreamKey {
    StreamKey {
        stream_id: 1,
        substream,
    }
}

fn scheduler_from_population(n: usize, seed: u64) -> (GlobalScheduler, NodePopulation) {
    let mut rng = SimRng::new(seed);
    let pop = NodePopulation::generate(
        &PopulationConfig {
            count: n,
            isps: 2,
            regions: 4,
            ..PopulationConfig::default()
        },
        &mut rng,
    );
    let mut sched = GlobalScheduler::new(SchedulerConfig::default(), rng.fork(1));
    for spec in &pop.nodes {
        let statics = StaticFeatures {
            isp: spec.isp,
            region: spec.region,
            bgp_prefix: spec.bgp_prefix,
            geo: spec.geo,
            class: if spec.high_quality {
                NodeClass::HighQuality
            } else {
                NodeClass::Normal
            },
            conn_type: ConnectionType::Cable,
            nat: spec.nat,
        };
        sched.register_node(
            NodeId(spec.id),
            statics,
            NodeStatus::idle(spec.capacity_mbps),
        );
    }
    (sched, pop)
}

fn client(region: u16) -> ClientInfo {
    ClientInfo {
        id: ClientId(1),
        isp: 0,
        region,
        bgp_prefix: region as u32 * 8,
        geo: (
            (region % 4) as f64 * 10.0 + 5.0,
            (region / 4) as f64 * 10.0 + 5.0,
        ),
        platform: Platform::Android,
    }
}

#[test]
fn population_registration_and_recommendation() {
    let (mut sched, pop) = scheduler_from_population(500, 1);
    assert_eq!(sched.node_count(), 500);
    let rec = sched.recommend(SimTime::from_secs(1), &client(0), key(0));
    assert_eq!(rec.candidates.len(), sched.config().top_k);
    // All recommended nodes exist in the population.
    for c in &rec.candidates {
        assert!(pop.nodes.iter().any(|n| n.id == c.node.0));
    }
}

#[test]
fn heartbeats_steer_recommendations_toward_forwarding_nodes() {
    let (mut sched, _pop) = scheduler_from_population(400, 2);
    // A handful of nodes start forwarding substream 0.
    let forwarding: Vec<u64> = (0..6).collect();
    for &id in &forwarding {
        let mut status = NodeStatus::idle(50.0);
        status.forwarding.insert(key(0));
        status.used_mbps = 5.0;
        sched.ingest_heartbeat(Heartbeat {
            node: NodeId(id),
            at: SimTime::from_secs(5),
            status,
        });
    }
    let rec = sched.recommend(SimTime::from_secs(6), &client(0), key(0));
    let fwd_in_top = rec
        .candidates
        .iter()
        .take(4)
        .filter(|c| c.already_forwarding)
        .count();
    assert!(
        fwd_in_top >= 2,
        "forwarding nodes should dominate the exploit slice: {:?}",
        rec.candidates
    );
}

#[test]
fn probe_and_switch_flow() {
    let (mut sched, pop) = scheduler_from_population(300, 3);
    let mut ctl = ClientController::new(ClientControllerConfig::default());
    let traversal = TraversalModel::default();
    let mut rng = SimRng::new(9);
    let now = SimTime::from_secs(1);

    let rec = sched.recommend(now, &client(1), key(0));
    let ids: Vec<NodeId> = rec.candidates.iter().map(|c| c.node).collect();
    let probes = ctl.probe_list(now, &ids);
    assert!(probes.len() <= 3);

    // Simulate application-level probes with NAT traversal.
    let outcomes: Vec<ProbeOutcome> = probes
        .iter()
        .map(|&n| {
            let spec = &pop.nodes[n.0 as usize];
            let ok = traversal.attempt(spec.nat, &mut rng);
            sched.observe_connection(now, n, ok);
            ProbeOutcome {
                node: n,
                rtt: ok.then(|| SimDuration::from_millis(spec.base_rtt_ms)),
            }
        })
        .collect();
    if let Some(publisher) = ctl.select_from_probes(now, &outcomes) {
        // Later, a much better candidate appears: switching rule fires.
        let decision = ctl.assess_switch(
            now + SimDuration::from_secs(10),
            publisher,
            SimDuration::from_millis(400),
            &[(NodeId(9999), SimDuration::from_millis(10))],
        );
        assert_eq!(decision, SwitchDecision::SwitchTo(NodeId(9999)));
    }
}

#[test]
fn adviser_cost_trigger_consults_scheduler_stream_utilization() {
    let (mut sched, _pop) = scheduler_from_population(50, 4);
    // Node 0 and 1 forward substream 0 with low utilisation.
    for id in 0..2u64 {
        let mut status = NodeStatus::idle(100.0);
        status.forwarding.insert(key(0));
        status.used_mbps = 10.0;
        sched.ingest_heartbeat(Heartbeat {
            node: NodeId(id),
            at: SimTime::from_secs(5),
            status,
        });
    }
    let mut adviser = EdgeAdviser::new(NodeId(0), AdviserConfig::default());
    for _ in 0..6 {
        adviser.record_utilization(0.1);
    }
    let stream_util = sched.stream_utilization(SimTime::from_secs(10), key(0));
    assert!(stream_util.expect("forwarders exist") < 0.3);
    let suggestions = adviser.evaluate(SimTime::from_secs(10), key(0), stream_util);
    assert!(matches!(
        suggestions.as_slice(),
        [SwitchSuggestion::CostConsolidation {
            node: NodeId(0),
            ..
        }]
    ));
}

#[test]
fn stale_population_shrinks_recommendations() {
    let (mut sched, _pop) = scheduler_from_population(100, 5);
    // Everyone heartbeats once at t=0s (registration sets ZERO, which is
    // exempt) and then at t=2s.
    for id in 0..100u64 {
        sched.ingest_heartbeat(Heartbeat {
            node: NodeId(id),
            at: SimTime::from_secs(2),
            status: NodeStatus::idle(30.0),
        });
    }
    let fresh = sched.recommend(SimTime::from_secs(10), &client(0), key(0));
    assert!(!fresh.candidates.is_empty());
    // 10 minutes later with no heartbeats: everything is stale.
    let stale = sched.recommend(SimTime::from_secs(600), &client(0), key(0));
    assert!(stale.candidates.is_empty());
}

#[test]
fn nat_failures_depress_future_scores() {
    let (mut sched, pop) = scheduler_from_population(300, 6);
    let hard_nodes: Vec<NodeId> = pop
        .nodes
        .iter()
        .filter(|n| n.nat.is_hard())
        .take(50)
        .map(|n| NodeId(n.id))
        .collect();
    assert!(!hard_nodes.is_empty());
    // Report repeated traversal failures on hard-NAT nodes.
    for _ in 0..20 {
        for &n in &hard_nodes {
            sched.observe_connection(SimTime::from_secs(1), n, false);
        }
    }
    // New recommendations de-prioritise hard NAT types.
    let rec = sched.recommend(SimTime::from_secs(1), &client(0), key(0));
    let hard_in_top = rec
        .candidates
        .iter()
        .take(3)
        .filter(|c| pop.nodes[c.node.0 as usize].nat.is_hard())
        .count();
    assert!(hard_in_top <= 1, "hard-NAT nodes still ranked high");
}

#[test]
fn capacity_model_consistent_with_measured_service_times() {
    // The scheduler's modelled per-request latency (Fig 12a) and the
    // capacity model must tell one coherent story: at the per-request
    // CPU cost (microseconds), a modest fleet absorbs production QPS,
    // while a single worker saturates far below it.
    use rlive_control::capacity::CapacityModel;
    let (mut sched, _pop) = scheduler_from_population(500, 9);
    for i in 0..200u64 {
        sched.recommend(SimTime::from_secs(1 + i), &client(0), key(0));
    }
    let p50_ms = sched.service_time_stats().median();
    assert!(p50_ms > 1.0, "service time stats empty");
    // The end-to-end latency the client sees (~58 ms) is dominated by
    // queueing/network, not CPU; the compute cost per request is tiny.
    let cpu_per_request = SimDuration::from_micros(20);
    let single = CapacityModel::new(cpu_per_request, 1);
    assert!(single.saturation_qps() < 100_000.0);
    let fleet = CapacityModel::workers_for(cpu_per_request, 2.0e6, SimDuration::from_millis(5));
    assert!(fleet <= 256, "fleet {fleet} too large for 2 MQPS");
}

#[test]
fn blacklisted_nodes_not_probed_until_expiry() {
    let mut ctl = ClientController::new(ClientControllerConfig::default());
    let t0 = SimTime::from_secs(1);
    for _ in 0..3 {
        ctl.record_failure(t0, NodeId(5));
    }
    let probes = ctl.probe_list(t0, &[NodeId(5), NodeId(6), NodeId(7), NodeId(8)]);
    assert_eq!(probes, vec![NodeId(6), NodeId(7), NodeId(8)]);
    let later = t0 + SimDuration::from_secs(200);
    let probes = ctl.probe_list(later, &[NodeId(5), NodeId(6)]);
    assert_eq!(probes[0], NodeId(5), "blacklist expired");
}
