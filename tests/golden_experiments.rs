//! Golden-output regression harness for the `experiments` binary.
//!
//! `tests/golden/<subcmd>.seed7.sha256` stores the SHA-256 digest of
//! `experiments <subcmd> 7` stdout, captured before the actor-module
//! refactor. These tests re-run subcommands and require byte-identical
//! output, so any behavioural drift in the simulation — RNG draw order,
//! event ordering, float arithmetic — fails loudly.
//!
//! The tier-1 subset covers the subcommands that finish in well under a
//! second (pure trace/CDF computations). The full 18-subcommand sweep
//! runs whole simulated worlds and takes minutes; it is `#[ignore]`d and
//! run explicitly:
//!
//! ```sh
//! cargo test --release --test golden_experiments -- --ignored
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

// ---------------------------------------------------------------------
// Minimal self-contained SHA-256 (FIPS 180-4). The offline workspace has
// no hashing crate; this keeps the golden files interoperable with
// `sha256sum`.
// ---------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn sha256_hex(data: &[u8]) -> String {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64) * 8;
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    for block in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    h.iter().map(|v| format!("{v:08x}")).collect()
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn expected_digest(sub: &str) -> String {
    let path = golden_dir().join(format!("{sub}.seed7.sha256"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()))
        .trim()
        .to_string()
}

fn run_digest(args: &[&str]) -> String {
    let exe = env!("CARGO_BIN_EXE_experiments");
    let out = Command::new(exe)
        .args(args)
        .output()
        .expect("spawn experiments binary");
    assert!(
        out.status.success(),
        "experiments {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    sha256_hex(&out.stdout)
}

fn assert_golden(sub: &str, extra: &[&str]) {
    let mut args = vec![sub, "7"];
    args.extend_from_slice(extra);
    let got = run_digest(&args);
    let want = expected_digest(sub);
    assert_eq!(
        got, want,
        "stdout of `experiments {sub} 7` drifted from the golden capture"
    );
}

#[test]
fn sha256_matches_known_vectors() {
    assert_eq!(
        sha256_hex(b""),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
    assert_eq!(
        sha256_hex(b"abc"),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
    // Multi-block message (>64 bytes).
    assert_eq!(
        sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    );
}

// ----- tier-1 fast subset (no world simulation) ------------------------

#[test]
fn golden_fig1b() {
    assert_golden("fig1b", &[]);
}

#[test]
fn golden_fig2c() {
    assert_golden("fig2c", &[]);
}

#[test]
fn golden_fig2d() {
    assert_golden("fig2d", &[]);
}

#[test]
fn golden_fig3() {
    assert_golden("fig3", &[]);
}

#[test]
fn golden_table1() {
    assert_golden("table1", &[]);
}

// The fleet preset's worlds are deliberately tiny, so the fleet
// subcommand is the one *world-simulating* path cheap enough for
// tier-1. The same digest must come out of every (jobs, world_jobs)
// combination — this is the end-to-end form of the
// crates/core/tests/fleet_invariance.rs battery.

#[test]
fn golden_fleet() {
    let want = expected_digest("fleet");
    for extra in [
        &[][..],
        &["--jobs", "4"][..],
        &["--jobs", "2", "--world-jobs", "2"][..],
    ] {
        let mut args = vec!["fleet", "5", "7"];
        args.extend_from_slice(extra);
        let got = run_digest(&args);
        assert_eq!(
            got, want,
            "stdout of `experiments fleet 5 7` drifted (extra args {extra:?})"
        );
    }
}

// The adaptive subcommand is the policy A/B: a (static, adaptive) ×
// seeds grid of mass-outage worlds. Its adaptive arm feeds recovery
// and probe telemetry back into relay scores, so this digest pins the
// whole feedback loop — window folding, hysteresis, demotion — as
// byte-identical across the (jobs, world-jobs) grid, the end-to-end
// form of crates/core/tests/adaptive_invariance.rs.

#[test]
fn golden_adaptive() {
    let want = expected_digest("adaptive");
    for extra in [
        &[][..],
        &["--jobs", "4"][..],
        &["--jobs", "2", "--world-jobs", "2"][..],
    ] {
        let mut args = vec!["adaptive", "3", "7"];
        args.extend_from_slice(extra);
        let got = run_digest(&args);
        assert_eq!(
            got, want,
            "stdout of `experiments adaptive 3 7` drifted (extra args {extra:?})"
        );
    }
}

// The recover subcommand races the qoe_edf and racing recovery
// policies over a (policy × seed) Fleet::product grid under a scripted
// mass outage + churn storm. Hedge legs sample retransmission traces
// from the world RNG and resolve as independent events with
// cancel-on-first-win, so its stdout must hit one digest across the
// whole (jobs, world-jobs) grid — the end-to-end form of
// crates/core/tests/recovery_invariance.rs.

#[test]
fn golden_recover() {
    let want = expected_digest("recover");
    for extra in [
        &[][..],
        &["--jobs", "4"][..],
        &["--jobs", "2", "--world-jobs", "2"][..],
    ] {
        let mut args = vec!["recover", "3", "7"];
        args.extend_from_slice(extra);
        let got = run_digest(&args);
        assert_eq!(
            got, want,
            "stdout of `experiments recover 3 7` drifted (extra args {extra:?})"
        );
    }
}

// The obs subcommand simulates one observability-enabled world; its
// windowed series aggregate over the trace stream, so its stdout must
// hit one digest across the whole (jobs, world-jobs) grid — the
// end-to-end form of crates/sim/tests/obs_invariance.rs. (The
// wall-clock stage profile goes to stderr and is not digested.)

#[test]
fn golden_obs() {
    let want = expected_digest("obs");
    for extra in [
        &[][..],
        &["--jobs", "4"][..],
        &["--jobs", "2", "--world-jobs", "2"][..],
    ] {
        let mut args = vec!["obs", "7"];
        args.extend_from_slice(extra);
        let got = run_digest(&args);
        assert_eq!(
            got, want,
            "stdout of `experiments obs 7` drifted (extra args {extra:?})"
        );
    }
}

// The slo subcommand runs a two-world scripted-storm fleet with the
// SLO engine on and prints the rulebook, the merged fire/resolve alert
// log and the per-injection incident timelines. Alert evaluation reads
// only sealed windows and the per-world alert streams merge in window
// order (exactly associative), so one digest must come out of the
// whole (jobs, world-jobs) grid — the end-to-end form of
// crates/core/tests/slo_invariance.rs.

#[test]
fn golden_slo() {
    let want = expected_digest("slo");
    for extra in [
        &[][..],
        &["--jobs", "4"][..],
        &["--jobs", "2", "--world-jobs", "2"][..],
    ] {
        let mut args = vec!["slo", "7"];
        args.extend_from_slice(extra);
        let got = run_digest(&args);
        assert_eq!(
            got, want,
            "stdout of `experiments slo 7` drifted (extra args {extra:?})"
        );
    }
}

// The fuzz subcommand drives the coverage-guided scenario fuzzer: a
// seed-deterministic mutation/evaluation/selection loop over small DSL
// worlds. Its digest pins the whole campaign — mutation draws, batch
// evaluation, greedy keep decisions, the rendered coverage matrix and
// replayable specs — as byte-identical across the (jobs, world-jobs)
// grid, the end-to-end form of crates/core/tests/fuzz_invariance.rs.

#[test]
fn golden_fuzz() {
    let want = expected_digest("fuzz");
    for extra in [
        &[][..],
        &["--jobs", "4"][..],
        &["--jobs", "2", "--world-jobs", "2"][..],
    ] {
        let mut args = vec!["fuzz", "3", "7"];
        args.extend_from_slice(extra);
        let got = run_digest(&args);
        assert_eq!(
            got, want,
            "stdout of `experiments fuzz 3 7` drifted (extra args {extra:?})"
        );
    }
}

// ----- tier-1 sharded re-run -------------------------------------------
//
// The same fast subset again with the world event loop sharded across
// two workers. The digests are the *same* golden files: `--world-jobs`
// must be byte-invisible in stdout (DESIGN.md "Sharded world
// execution"). These subcommands simulate no worlds, so this pins the
// cheap half of the contract — flag parsing and the N=1-identical
// formation path; `golden_sharded_sweep` below pins the expensive half.

#[test]
fn golden_fig1b_sharded() {
    assert_golden("fig1b", &["--world-jobs", "2"]);
}

#[test]
fn golden_fig2c_sharded() {
    assert_golden("fig2c", &["--world-jobs", "2"]);
}

#[test]
fn golden_fig2d_sharded() {
    assert_golden("fig2d", &["--world-jobs", "2"]);
}

#[test]
fn golden_fig3_sharded() {
    assert_golden("fig3", &["--world-jobs", "2"]);
}

#[test]
fn golden_table1_sharded() {
    assert_golden("table1", &["--world-jobs", "2"]);
}

// ----- full sweep (simulated worlds; minutes in release) ---------------

#[test]
#[ignore = "runs full simulated worlds; use --release -- --ignored"]
fn golden_full_sweep() {
    for sub in [
        "fig2a", "fig2b", "fig8", "fig9", "table2", "fig10", "fig11", "fig12", "table3", "fig13",
        "table4", "fallback", "ablation",
    ] {
        assert_golden(sub, &[]);
        eprintln!("golden ok: {sub}");
    }
}

#[test]
#[ignore = "runs a simulated world twice; use --release -- --ignored"]
fn golden_output_is_jobs_invariant() {
    // The runner merges cells deterministically: worker count must not
    // change a single output byte.
    let a = run_digest(&["fig12", "7", "--jobs", "1"]);
    let b = run_digest(&["fig12", "7", "--jobs", "4"]);
    assert_eq!(a, b, "--jobs changed experiments output");
    assert_eq!(a, expected_digest("fig12"));
}

#[test]
#[ignore = "runs full simulated worlds sharded; use --release -- --ignored"]
fn golden_sharded_sweep() {
    // Every world-simulating subcommand, with the event loop *inside*
    // each world sharded across worker threads, must hit the exact
    // digest the sequential run pinned. This is the end-to-end form of
    // the shard-invariance battery in crates/core/tests.
    for jobs in ["2", "8"] {
        for sub in [
            "fig2a", "fig2b", "fig8", "fig9", "table2", "fig10", "fig11", "fig12", "table3",
            "fig13", "table4", "fallback", "ablation",
        ] {
            assert_golden(sub, &["--world-jobs", jobs]);
            eprintln!("golden ok (world-jobs={jobs}): {sub}");
        }
    }
}
