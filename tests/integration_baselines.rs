//! Baseline-comparison integration tests: the orderings the paper's
//! evaluation hinges on, checked at small scale with seed averaging.
//!
//! Absolute magnitudes differ from production; these tests pin the
//! *signs* and rough factors (who wins), which is what the reproduction
//! promises. Each assertion averages several seeds to tame variance.

use rlive::abtest::AbTest;
use rlive::config::{DeliveryMode, SystemConfig};
use rlive::world::{GroupPolicy, RunReport, World};
use rlive_sim::SimDuration;
use rlive_workload::scenario::Scenario;

fn ab(control: DeliveryMode, test: DeliveryMode, seed: u64, cdn_mbps: u64) -> AbTest {
    let mut t = AbTest {
        scenario: Scenario::evening_peak().scaled(0.15),
        config: SystemConfig::default(),
        control,
        test,
        seed,
    };
    t.scenario.duration = SimDuration::from_secs(180);
    t.scenario.streams = 4;
    t.scenario.population.isps = 2;
    t.scenario.population.regions = 4;
    t.scenario.population.high_quality_fraction = 0.10;
    t.config.multi_source_after = SimDuration::from_secs(8);
    t.config.popularity_threshold = 2;
    t.config.cdn_edge_mbps = cdn_mbps;
    t
}

fn mean_diffs(
    control: DeliveryMode,
    test: DeliveryMode,
    cdn_mbps: u64,
    seeds: &[u64],
) -> (f64, f64, f64) {
    let mut rebuf = 0.0;
    let mut bitrate = 0.0;
    let mut e2e = 0.0;
    for &s in seeds {
        let r = ab(control, test, s, cdn_mbps).run();
        rebuf += r.diff.rebuffer_events_pct;
        bitrate += r.diff.bitrate_pct;
        e2e += r.diff.e2e_latency_pct;
    }
    let n = seeds.len() as f64;
    (rebuf / n, bitrate / n, e2e / n)
}

/// The §7.2 two-tier setting: a healthy CDN, a small saturated relay
/// pool, single-source on the high-quality tier, multi on the weak one.
fn two_tier_scenario() -> Scenario {
    let mut s = Scenario::evening_peak().scaled(0.25);
    s.duration = SimDuration::from_secs(240);
    s.streams = 3;
    s.population.count = 40;
    s.population.isps = 2;
    s.population.regions = 4;
    s.population.high_quality_fraction = 0.10;
    s
}

fn two_tier_config(mode: DeliveryMode) -> SystemConfig {
    let mut cfg = SystemConfig::for_mode(mode);
    cfg.cdn_edge_mbps = 400;
    cfg.cdn_background_peak_frac = 0.05;
    cfg.multi_source_after = SimDuration::from_secs(8);
    cfg.popularity_threshold = 2;
    cfg.multi_on_weak_tier = true;
    cfg
}

fn two_tier_run(mode: DeliveryMode, seed: u64) -> RunReport {
    World::new(
        two_tier_scenario(),
        two_tier_config(mode),
        GroupPolicy::uniform(mode),
        seed,
    )
    .run()
}

#[test]
fn fig9_rlive_beats_cdn_only_at_peak() {
    // Paper Fig 9: rebuffering about -15 %, bitrate about +10.5 %,
    // E2E latency +4-6 % (test = RLive, control = CDN-only).
    let (rebuf, bitrate, e2e) =
        mean_diffs(DeliveryMode::CdnOnly, DeliveryMode::RLive, 90, &[1, 2, 3]);
    assert!(rebuf < 0.0, "rebuffering diff {rebuf} (want negative)");
    assert!(bitrate > 3.0, "bitrate diff {bitrate} (want positive)");
    assert!(
        (0.0..30.0).contains(&e2e),
        "e2e diff {e2e} (want small positive)"
    );
}

#[test]
fn fig2a_single_source_degrades_qoe_on_healthy_cdn() {
    // Paper §2.2: vs a healthy CDN, the naive single-source layer adds
    // 37.5-44.7 % rebuffering and 26-35 % E2E latency. Compare raw means
    // across seeds (the CDN baseline is near zero, so ratios are noisy).
    let seeds = [4u64, 5, 6, 7];
    let mut cdn_rebuf = 0.0;
    let mut single_rebuf = 0.0;
    let mut cdn_e2e = 0.0;
    let mut single_e2e = 0.0;
    for &s in &seeds {
        let c = two_tier_run(DeliveryMode::CdnOnly, s);
        let b = two_tier_run(DeliveryMode::SingleSource, s);
        cdn_rebuf += c.test_qoe.rebuffers_per_100s.mean();
        single_rebuf += b.test_qoe.rebuffers_per_100s.mean();
        cdn_e2e += c.test_qoe.e2e_latency_ms.mean();
        single_e2e += b.test_qoe.e2e_latency_ms.mean();
    }
    assert!(
        single_rebuf > cdn_rebuf,
        "single-source rebuffering {single_rebuf} should exceed CDN {cdn_rebuf}"
    );
    assert!(
        single_e2e > cdn_e2e,
        "single-source latency {single_e2e} should exceed CDN {cdn_e2e}"
    );
}

#[test]
fn fig11_multi_uses_capacity_more_efficiently() {
    // Paper Fig 11(c): multi-source nearly doubles the traffic expansion
    // rate at production scale. At simulator scale the robust signal is
    // capacity-normalised: single-source needs the scarce high-capacity
    // tier, while multi extracts comparable fan-out per Mbps from weak
    // nodes — the substream granularity making weak nodes useful (§2.3).
    let seeds = [8u64, 9, 10];
    let mut single_eff = 0.0;
    let mut multi_eff = 0.0;
    for &s in &seeds {
        let single = two_tier_run(DeliveryMode::SingleSource, s);
        let multi = two_tier_run(DeliveryMode::RLive, s);
        let gamma_s = single.test_traffic.expansion_rate().unwrap_or(0.0);
        let gamma_m = multi.test_traffic.expansion_rate().unwrap_or(0.0);
        // Mean capacity of the nodes each mode actually used: single is
        // pinned to the top tier (top 10 % by capacity), multi to the
        // rest. Approximate tier capacities from the population shape.
        let cap_single = 500.0; // HQ tier mean, Mbps
        let cap_multi = 30.0; // weak tier mean, Mbps
        single_eff += gamma_s / cap_single;
        multi_eff += gamma_m / cap_multi;
    }
    assert!(
        multi_eff > single_eff,
        "multi fan-out per Mbps {multi_eff} should exceed single {single_eff}"
    );
}

#[test]
fn fig8_view_split_is_fair() {
    // Paper Fig 8: hash-based A/B splits differ by ~0.01 % at billions
    // of views; at a few hundred views the binomial noise allows a few
    // tens of percent — assert the split is not systematically skewed.
    let mut total = 0.0;
    let seeds = [10u64, 11, 12, 13];
    for &s in &seeds {
        let r = ab(DeliveryMode::CdnOnly, DeliveryMode::RLive, s, 140).run();
        total += r.view_split_pct;
    }
    let mean = total / seeds.len() as f64;
    assert!(mean.abs() < 25.0, "mean view split {mean} %");
}

#[test]
fn table2_eqt_per_byte_falls_with_fanout() {
    // Table 2's mechanism: with enough fan-out (γ ≳ 4), the equivalent
    // traffic per delivered byte drops below the all-dedicated price.
    let mut s = Scenario::evening_peak();
    s.peak_viewers = 200;
    s.duration = SimDuration::from_secs(240);
    s.streams = 2;
    s.population.count = 40;
    s.population.isps = 2;
    s.population.regions = 2;
    let mut cfg = SystemConfig::for_mode(DeliveryMode::RLive);
    cfg.cdn_edge_mbps = 200;
    cfg.multi_source_after = SimDuration::from_secs(8);
    cfg.popularity_threshold = 2;
    cfg.scheduler.back_to_cdn_cost = 5.0;
    let r = World::new(s, cfg, GroupPolicy::uniform(DeliveryMode::RLive), 31).run();
    let t = &r.test_traffic;
    let gamma = t.expansion_rate().unwrap_or(0.0);
    let per_byte = t.equivalent_traffic(1.35) / t.client_bytes().max(1) as f64;
    assert!(gamma > 3.0, "fan-out too low: γ {gamma}");
    assert!(
        per_byte < 1.35,
        "per-byte EqT {per_byte} should beat the dedicated price 1.35 (γ {gamma})"
    );
}

#[test]
fn rtm_profile_close_to_flv() {
    // Paper Fig 13: RTM adds ~1 % E2E latency with bitrate/rebuffering
    // nearly unchanged.
    use rlive::config::TransportProfile;
    let mut flv_cfg = SystemConfig::for_mode(DeliveryMode::RLive);
    flv_cfg.cdn_edge_mbps = 140;
    flv_cfg.multi_source_after = SimDuration::from_secs(8);
    flv_cfg.popularity_threshold = 2;
    let mut rtm_cfg = flv_cfg.clone();
    rtm_cfg.transport = TransportProfile::Rtm;

    let mut scenario = Scenario::evening_peak().scaled(0.15);
    scenario.duration = SimDuration::from_secs(180);
    scenario.streams = 4;
    scenario.population.isps = 2;
    scenario.population.regions = 4;

    let flv = World::new(
        scenario.clone(),
        flv_cfg,
        GroupPolicy::uniform(DeliveryMode::RLive),
        15,
    )
    .run();
    let rtm = World::new(
        scenario,
        rtm_cfg,
        GroupPolicy::uniform(DeliveryMode::RLive),
        15,
    )
    .run();
    let bitrate_diff = (rtm.test_qoe.bitrate_bps.mean() - flv.test_qoe.bitrate_bps.mean())
        / flv.test_qoe.bitrate_bps.mean()
        * 100.0;
    assert!(bitrate_diff.abs() < 15.0, "bitrate diff {bitrate_diff} %");
}
