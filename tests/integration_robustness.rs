//! Failure-injection robustness suite: correlated relay outages, heavy
//! churn and degenerate configurations must degrade QoE gracefully,
//! never wedge sessions.

use rlive::config::{DeliveryMode, SystemConfig};
use rlive::world::{GroupPolicy, RunReport, World};
use rlive_sim::{SimDuration, SimTime};
use rlive_workload::scenario::Scenario;

fn scenario() -> Scenario {
    let mut s = Scenario::evening_peak().scaled(0.08);
    s.duration = SimDuration::from_secs(120);
    s.streams = 3;
    s.population.isps = 2;
    s.population.regions = 4;
    s
}

fn config(mode: DeliveryMode) -> SystemConfig {
    let mut cfg = SystemConfig::for_mode(mode);
    cfg.multi_source_after = SimDuration::from_secs(5);
    cfg.popularity_threshold = 1;
    cfg.cdn_edge_mbps = 140;
    cfg
}

fn run_with<F: FnOnce(&mut World)>(mode: DeliveryMode, seed: u64, inject: F) -> RunReport {
    let mut world = World::new(scenario(), config(mode), GroupPolicy::uniform(mode), seed);
    inject(&mut world);
    world.run()
}

#[test]
fn mass_relay_outage_is_survivable() {
    // Half the relay fleet dies for 30 s mid-run (a vendor outage). The
    // multi-source design re-maps / falls back; sessions keep playing.
    let baseline = run_with(DeliveryMode::RLive, 41, |_| {});
    let outaged = run_with(DeliveryMode::RLive, 41, |w| {
        w.inject_mass_outage(SimTime::from_secs(50), SimDuration::from_secs(30), 0.5)
            .expect("valid outage");
    });
    assert!(outaged.test_qoe.views > 5);
    assert!(
        outaged.test_qoe.watch_secs > baseline.test_qoe.watch_secs * 0.6,
        "outage watch {} vs baseline {}",
        outaged.test_qoe.watch_secs,
        baseline.test_qoe.watch_secs
    );
    // The outage costs something (stalls, fallbacks or skips) — it must
    // not be silently free. The factor is loose: at this seed the
    // baseline's skip rate dominates the proxy, and recovery-path fixes
    // (e.g. evicting stale bookkeeping below the playback head) shift
    // where the outage cost shows up — mostly into the watch-time drop
    // asserted above.
    let disruption = |r: &RunReport| {
        r.test_qoe.rebuffers_per_100s.mean()
            + r.test_qoe.skips_per_100s.mean()
            + r.test_qoe.cdn_fallbacks as f64
    };
    assert!(
        disruption(&outaged) >= disruption(&baseline) * 0.6,
        "outage should not look better than baseline: outaged {} vs baseline {}",
        disruption(&outaged),
        disruption(&baseline)
    );
    assert!(
        outaged.test_qoe.watch_secs < baseline.test_qoe.watch_secs,
        "the outage must cost watch time: outaged {} vs baseline {}",
        outaged.test_qoe.watch_secs,
        baseline.test_qoe.watch_secs
    );
}

#[test]
fn total_relay_outage_falls_back_to_cdn() {
    // Every relay dies for the rest of the run: all sessions must end up
    // on CDN delivery and keep playing.
    let r = run_with(DeliveryMode::RLive, 42, |w| {
        w.inject_mass_outage(SimTime::from_secs(40), SimDuration::from_secs(600), 1.0)
            .expect("valid outage");
    });
    assert!(r.test_qoe.views > 5);
    assert!(
        r.test_qoe.watch_secs > 60.0,
        "watch {}",
        r.test_qoe.watch_secs
    );
    // After the outage begins, best-effort traffic stops growing, so the
    // dedicated share of client bytes must dominate.
    let ded_share =
        r.test_traffic.dedicated_serving as f64 / r.test_traffic.client_bytes().max(1) as f64;
    assert!(ded_share > 0.4, "dedicated share {ded_share}");
}

#[test]
fn single_source_mode_survives_outage_via_remapping() {
    let r = run_with(DeliveryMode::SingleSource, 43, |w| {
        w.inject_mass_outage(SimTime::from_secs(40), SimDuration::from_secs(20), 0.6)
            .expect("valid outage");
    });
    assert!(r.test_qoe.views > 5);
    assert!(r.test_qoe.watch_secs > 60.0);
}

#[test]
fn degenerate_single_substream_config_works() {
    // K = 1 degenerates multi-source to a single relay path; the system
    // must still function (the K ablation's lower bound).
    let mut cfg = config(DeliveryMode::RLive);
    cfg.substreams = 1;
    cfg.recovery.substream_count = 1;
    let r = World::new(
        scenario(),
        cfg,
        GroupPolicy::uniform(DeliveryMode::RLive),
        44,
    )
    .run();
    assert!(r.test_qoe.views > 5);
    assert!(r.test_qoe.watch_secs > 60.0);
}

#[test]
fn zero_relay_population_degrades_to_cdn_only() {
    let mut s = scenario();
    s.population.count = 1; // effectively no usable pool
    let r = World::new(
        s,
        config(DeliveryMode::RLive),
        GroupPolicy::uniform(DeliveryMode::RLive),
        45,
    )
    .run();
    assert!(r.test_qoe.views > 5);
    assert!(r.test_qoe.watch_secs > 60.0);
    // Nearly everything must have come from the CDN.
    let ded_share =
        r.test_traffic.dedicated_serving as f64 / r.test_traffic.client_bytes().max(1) as f64;
    assert!(ded_share > 0.8, "dedicated share {ded_share}");
}

#[test]
fn outage_injection_is_deterministic() {
    let a = run_with(DeliveryMode::RLive, 46, |w| {
        w.inject_mass_outage(SimTime::from_secs(30), SimDuration::from_secs(15), 0.3)
            .expect("valid outage");
    });
    let b = run_with(DeliveryMode::RLive, 46, |w| {
        w.inject_mass_outage(SimTime::from_secs(30), SimDuration::from_secs(15), 0.3)
            .expect("valid outage");
    });
    assert_eq!(a.test_qoe.views, b.test_qoe.views);
    assert_eq!(
        a.test_traffic.best_effort_serving,
        b.test_traffic.best_effort_serving
    );
}
