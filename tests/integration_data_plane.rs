//! Cross-crate data-plane integration: media generation → relay-side
//! chaining/packetisation → client-side reordering and recovery
//! decisions, exercised together the way the world wires them.

use rlive_data::recovery::{
    FrameState, RecoveryAction, RecoveryConfig, RecoveryDecider, RecoveryStats,
};
use rlive_data::reorder::ReorderBuffer;
use rlive_data::sequencing::GlobalChain;
use rlive_media::footprint::ChainGenerator;
use rlive_media::frame::Frame;
use rlive_media::gop::{GopConfig, GopGenerator};
use rlive_media::packet::{packetize, DataPacket, PACKET_PAYLOAD};
use rlive_media::substream::substream_of;
use rlive_sim::{SimDuration, SimRng, SimTime};

const K: u16 = 4;

/// Builds a stream's frames with per-frame packets, exactly as relays
/// would push them.
fn build_stream(n: usize, seed: u64) -> Vec<(Frame, Vec<DataPacket>)> {
    let mut gen = GopGenerator::new(5, GopConfig::default(), SimRng::new(seed));
    let mut chains = ChainGenerator::new(PACKET_PAYLOAD);
    gen.take_frames(n)
        .into_iter()
        .map(|f| {
            let chain = chains.observe(&f.header);
            let ss = substream_of(&f.header, K).0;
            let pkts = packetize(&f, ss, &chain, ss as u32);
            (f, pkts)
        })
        .collect()
}

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

#[test]
fn multi_source_stream_reassembles_in_order() {
    let stream = build_stream(120, 1);
    let mut rb = ReorderBuffer::new();
    let mut released = Vec::new();
    // Substreams arrive with different skews, as four relays would push.
    let mut deliveries: Vec<(u64, &DataPacket)> = Vec::new();
    for (i, (f, pkts)) in stream.iter().enumerate() {
        let ss = substream_of(&f.header, K).0 as u64;
        for p in pkts {
            deliveries.push((i as u64 * 33 + ss * 7 + p.packet_index as u64, p));
        }
    }
    deliveries.sort_by_key(|(at, p)| (*at, p.frame.dts_ms, p.packet_index));
    for (at, p) in deliveries {
        released.extend(rb.ingest(t(at), p));
    }
    assert_eq!(released.len(), 120);
    for (r, (f, _)) in released.iter().zip(&stream) {
        assert_eq!(r.header.dts_ms, f.header.dts_ms);
    }
    assert_eq!(rb.skipped_count(), 0);
}

#[test]
fn lost_substream_detected_and_recoverable_via_decider() {
    let stream = build_stream(60, 2);
    let mut rb = ReorderBuffer::new();
    // Drop every packet of substream 2 (its relay died); deliver rest.
    let dead_ss = 2u16;
    let mut recovered = 0;
    for (i, (f, pkts)) in stream.iter().enumerate() {
        let ss = substream_of(&f.header, K).0;
        if ss == dead_ss {
            continue;
        }
        for p in pkts {
            recovered += rb.ingest(t(i as u64 * 33), p).len();
        }
    }
    // Chains from surviving relays announce the missing frames.
    let now = t(60 * 33 + 500);
    let missing = rb.missing_chain_frames(now, SimDuration::from_millis(120));
    assert!(!missing.is_empty(), "dead substream's frames must surface");
    for (dts, _) in &missing {
        let f = stream
            .iter()
            .find(|(f, _)| f.header.dts_ms == *dts)
            .expect("announced frame exists");
        assert_eq!(substream_of(&f.0.header, K).0, dead_ss);
    }

    // The decider escalates a substream-wide burst to a switch.
    let decider = RecoveryDecider::new(RecoveryConfig::default());
    let stats = RecoveryStats::default();
    let states: Vec<FrameState> = missing
        .iter()
        .map(|&(dts, cnt)| FrameState {
            dts_ms: dts,
            deadline: SimDuration::from_millis(400),
            size: cnt * 1000,
            missing_packets: cnt,
            frame_type: rlive_media::frame::FrameType::P,
            substream: dead_ss,
        })
        .collect();
    let decisions = decider.decide(&states, &stats);
    assert!(
        decisions
            .iter()
            .all(|d| d.action == RecoveryAction::SwitchSubstream),
        "{decisions:?}"
    );

    // Recovered frames (whole-frame dedicated retrievals) unblock the
    // stream in order. Frames of the dead substream from *before* the
    // session anchor (the first frame whose data arrived) are excluded
    // by the join floor, so the expected count starts at the anchor.
    let anchor_idx = stream
        .iter()
        .position(|(f, _)| substream_of(&f.header, K).0 != dead_ss)
        .expect("some substream survives");
    // A dead frame is *announced* (enters the global chain) only if an
    // alive frame within the chain length δ−1 = 3 after it delivered a
    // chain covering it. Frames inside longer dead runs have data but no
    // order info and correctly stay unreleased (a live session keeps
    // announcing; this finite test stream ends).
    let alive = |i: usize| substream_of(&stream[i].0.header, K).0 != dead_ss;
    let announced = |i: usize| (i..stream.len().min(i + 4)).any(alive);
    let expected = (anchor_idx..stream.len())
        .filter(|&i| alive(i) || announced(i))
        .count();
    for (f, _) in &stream {
        if substream_of(&f.header, K).0 == dead_ss {
            recovered += rb.ingest_whole_frame(now, f.header).len();
        } else {
            recovered += rb.drain_ready(now).len();
        }
    }
    assert_eq!(recovered, expected);
}

#[test]
fn packet_loss_recovery_round_trip() {
    let stream = build_stream(30, 3);
    let mut rb = ReorderBuffer::new();
    let mut dropped: Vec<&DataPacket> = Vec::new();
    let mut rng = SimRng::new(77);
    for (i, (_, pkts)) in stream.iter().enumerate() {
        for p in pkts {
            if rng.chance(0.08) {
                dropped.push(p);
            } else {
                rb.ingest(t(i as u64 * 33), p);
            }
        }
    }
    assert!(!dropped.is_empty(), "loss process must drop something");
    let now = t(2_000);
    let incomplete = rb.incomplete_frames(now, SimDuration::from_millis(100));
    // Every incomplete frame corresponds to dropped packets.
    for f in &incomplete {
        for m in &f.missing {
            assert!(
                dropped
                    .iter()
                    .any(|p| p.frame.dts_ms == f.header.dts_ms && p.packet_index == *m),
                "missing packet {m} of dts {} was not dropped",
                f.header.dts_ms
            );
        }
    }
    // Retransmit everything; the stream completes fully in order, with
    // the join floor excluding only frames wholly lost before the first
    // successful delivery.
    let anchor_dts = rb.chain().dts_sequence().first().copied().unwrap_or(0);
    let mut released = 0;
    for p in &dropped {
        released += rb.ingest_retransmission(now, p).len();
    }
    released += rb.drain_ready(now).len();
    // Everything still assembling or blocked must be empty now.
    assert_eq!(rb.assembling_count(), 0, "incomplete frames remain");
    assert_eq!(rb.blocked_complete(), 0, "blocked frames remain");
    let _ = (released, anchor_dts);
}

#[test]
fn deadline_skip_bounds_stall() {
    let stream = build_stream(40, 4);
    let mut rb = ReorderBuffer::new();
    // Frame 10 lost entirely; everything else arrives.
    for (i, (f, pkts)) in stream.iter().enumerate() {
        if i == 10 {
            continue;
        }
        let _ = f;
        for p in pkts {
            rb.ingest(t(i as u64 * 33), p);
        }
    }
    assert!(rb.blocked_complete() > 0, "frames pile behind the hole");
    assert!(rb.head_blocked_since().is_some());
    let released = rb.skip_blocked_head(t(5_000));
    assert!(
        released.len() >= 25,
        "skip must unblock the pile, got {}",
        released.len()
    );
    assert_eq!(rb.skipped_count(), 1);
}

#[test]
fn centralized_style_chain_delivery_works_out_of_band() {
    // Chains stripped from packets (central sequencing): frames complete
    // but cannot release until chains arrive out of band.
    let stream = build_stream(20, 5);
    let mut rb = ReorderBuffer::new();
    for (i, (f, pkts)) in stream.iter().enumerate() {
        for p in pkts {
            let received: Vec<u32> = vec![p.packet_index];
            rb.ingest_slice(
                t(i as u64 * 33),
                f.header,
                p.substream,
                &received,
                p.packet_count,
                None, // no embedded chain
            );
        }
    }
    assert_eq!(rb.drain_ready(t(700)).len(), 0, "no order info yet");
    // The "super node" ships chains later.
    let mut chains = ChainGenerator::new(PACKET_PAYLOAD);
    let mut released = 0;
    for (f, _) in &stream {
        let chain = chains.observe(&f.header);
        rb.ingest_chain_only(&chain);
        released += rb.drain_ready(t(900)).len();
    }
    assert_eq!(released, 20);
}

#[test]
fn global_chain_and_reorder_agree_on_order() {
    // The reorder buffer's internal chain must match a standalone
    // GlobalChain fed the same inputs.
    let stream = build_stream(25, 6);
    let mut rb = ReorderBuffer::new();
    let mut gc = GlobalChain::new();
    for (i, (f, pkts)) in stream.iter().enumerate() {
        gc.ingest_header(f.header);
        for p in pkts {
            gc.ingest_chain(&p.chain);
            rb.ingest(t(i as u64 * 33), p);
        }
    }
    // Everything released by rb must have been poppable from gc in the
    // same order.
    let mut gc_order = Vec::new();
    while let Some(fp) = gc.pop_linked_head() {
        gc_order.push(fp.dts_ms);
    }
    assert_eq!(
        gc_order,
        stream
            .iter()
            .map(|(f, _)| f.header.dts_ms)
            .collect::<Vec<_>>()
    );
}
