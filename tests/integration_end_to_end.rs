//! End-to-end world integration: full RLive stacks running on the
//! simulator, checking system-level invariants across delivery modes.

use rlive::config::{DeliveryMode, SystemConfig};
use rlive::world::{GroupPolicy, RunReport, World};
use rlive_sim::SimDuration;
use rlive_workload::scenario::Scenario;

fn scenario() -> Scenario {
    let mut s = Scenario::evening_peak().scaled(0.08);
    s.duration = SimDuration::from_secs(90);
    s.streams = 3;
    s.population.isps = 2;
    s.population.regions = 4;
    s
}

fn config(mode: DeliveryMode) -> SystemConfig {
    let mut cfg = SystemConfig::for_mode(mode);
    cfg.multi_source_after = SimDuration::from_secs(5);
    cfg.popularity_threshold = 1;
    cfg.cdn_edge_mbps = 110;
    cfg
}

fn run(mode: DeliveryMode, seed: u64) -> RunReport {
    World::new(scenario(), config(mode), GroupPolicy::uniform(mode), seed).run()
}

#[test]
fn every_mode_plays_video() {
    for (i, mode) in [
        DeliveryMode::CdnOnly,
        DeliveryMode::SingleSource,
        DeliveryMode::RLive,
        DeliveryMode::RedundantMulti,
        DeliveryMode::RLiveCentralSequencing,
    ]
    .into_iter()
    .enumerate()
    {
        let r = run(mode, 100 + i as u64);
        assert!(r.test_qoe.views > 5, "{mode:?}: views {}", r.test_qoe.views);
        assert!(
            r.test_qoe.watch_secs > 60.0,
            "{mode:?}: watch {}",
            r.test_qoe.watch_secs
        );
        assert!(
            r.test_qoe.bitrate_bps.mean() > 400_000.0,
            "{mode:?}: bitrate {}",
            r.test_qoe.bitrate_bps.mean()
        );
    }
}

#[test]
fn traffic_conservation_invariants() {
    let r = run(DeliveryMode::RLive, 7);
    let t = &r.test_traffic;
    // Clients can only receive what some class served.
    assert_eq!(
        t.client_bytes(),
        t.dedicated_serving + t.best_effort_serving
    );
    // Best-effort relays cannot serve without pulling from the CDN.
    if t.best_effort_serving > 0 {
        assert!(t.dedicated_backhaul > 0);
    }
    // EqT with unit dedicated cost equals raw byte total.
    let raw = (t.dedicated_bytes() + t.best_effort_serving) as f64;
    assert!((t.equivalent_traffic(1.0) - raw).abs() < 1.0);
    // Dedicated premium strictly increases EqT when dedicated bytes flow.
    assert!(t.equivalent_traffic(1.35) > t.equivalent_traffic(1.0));
}

#[test]
fn cdn_only_never_touches_best_effort() {
    let r = run(DeliveryMode::CdnOnly, 8);
    assert_eq!(r.test_traffic.dedicated_backhaul, 0);
    assert!(r.relay_expansion_rates.is_empty());
}

#[test]
fn rlive_offloads_meaningful_traffic() {
    let r = run(DeliveryMode::RLive, 9);
    let share =
        r.test_traffic.best_effort_serving as f64 / r.test_traffic.client_bytes().max(1) as f64;
    assert!(share > 0.15, "best-effort share {share}");
}

#[test]
fn redundant_multi_costs_more_backhaul_than_rlive() {
    let rlive = run(DeliveryMode::RLive, 10);
    let redundant = run(DeliveryMode::RedundantMulti, 10);
    // Redundant replication pulls every substream twice and pushes two
    // copies to every client; per second of video watched it must move
    // more bytes than the redundancy-free design (the §2.3 argument).
    let rl = (rlive.test_traffic.dedicated_backhaul + rlive.test_traffic.best_effort_serving)
        as f64
        / rlive.test_qoe.watch_secs.max(1.0);
    let rd = (redundant.test_traffic.dedicated_backhaul
        + redundant.test_traffic.best_effort_serving) as f64
        / redundant.test_qoe.watch_secs.max(1.0);
    assert!(
        rd > rl * 1.15,
        "redundant bytes/watch-sec {rd} should clearly exceed rlive {rl}"
    );
}

#[test]
fn runs_are_deterministic() {
    let a = run(DeliveryMode::RLive, 11);
    let b = run(DeliveryMode::RLive, 11);
    assert_eq!(a.test_qoe.views, b.test_qoe.views);
    assert_eq!(a.test_qoe.viewers, b.test_qoe.viewers);
    assert_eq!(
        a.test_traffic.best_effort_serving,
        b.test_traffic.best_effort_serving
    );
    assert_eq!(
        a.test_traffic.dedicated_serving,
        b.test_traffic.dedicated_serving
    );
    assert_eq!(a.scheduler_requests, b.scheduler_requests);
    assert!((a.test_qoe.watch_secs - b.test_qoe.watch_secs).abs() < 1e-9);
}

#[test]
fn different_seeds_differ() {
    let a = run(DeliveryMode::RLive, 12);
    let b = run(DeliveryMode::RLive, 13);
    // Extremely unlikely to coincide if seeds actually propagate.
    assert!(
        a.test_traffic.dedicated_serving != b.test_traffic.dedicated_serving
            || a.test_qoe.views != b.test_qoe.views
    );
}

#[test]
fn ab_split_isolates_policies() {
    let r = World::new(
        scenario(),
        config(DeliveryMode::RLive),
        GroupPolicy::ab(DeliveryMode::CdnOnly, DeliveryMode::RLive),
        14,
    )
    .run();
    assert!(r.control_qoe.views > 0);
    assert!(r.test_qoe.views > 0);
    assert_eq!(r.control_traffic.best_effort_serving, 0);
    assert_eq!(r.control_traffic.dedicated_backhaul, 0);
    assert!(r.test_traffic.best_effort_serving > 0);
}

#[test]
fn scheduler_latency_percentiles_shape() {
    let r = run(DeliveryMode::RLive, 15);
    let lat = &r.scheduler_latency_ms;
    assert!(lat.len() == 101);
    // Monotone percentiles, sane magnitudes (Fig 12a ballpark).
    for w in lat.windows(2) {
        assert!(w[1] >= w[0] - 1e-9);
    }
    assert!(lat[50] > 20.0 && lat[50] < 150.0, "P50 {}", lat[50]);
    assert!(lat[90] > lat[50]);
}

#[test]
fn energy_percentages_are_sane() {
    let r = run(DeliveryMode::RLive, 16);
    let (cpu, mem, temp, bat) = r.test_energy;
    assert!((99.0..110.0).contains(&cpu), "cpu {cpu}");
    assert!((99.0..110.0).contains(&mem), "mem {mem}");
    assert!((99.0..102.0).contains(&temp), "temp {temp}");
    assert!((99.0..105.0).contains(&bat), "battery {bat}");
}

#[test]
fn central_sequencing_retransmits_more_than_distributed() {
    // Table 3's direction: the distributed design cuts retransmissions.
    let central = run(DeliveryMode::RLiveCentralSequencing, 17);
    let distributed = run(DeliveryMode::RLive, 17);
    let c = central.test_qoe.retx_per_100s.mean();
    let d = distributed.test_qoe.retx_per_100s.mean();
    assert!(c > d, "central {c} retx/100s should exceed distributed {d}");
}
